// The binarized residual network architecture of Fig. 2.
//
// Every convolution block is BatchNorm -> Binarize -> BinaryConv (Fig. 3;
// the binarize step lives inside BinaryConv2d, which consumes the real-
// valued BN output so it can also derive the alpha_T input scales). Residual
// blocks use two 3x3 binary conv blocks on the main path and a 1x1 binary
// conv block on the shortcut wherever shapes change. The paper's full
// network is 12 weight layers: stem conv + 5 residual blocks (2 convs each)
// + the fully connected classifier head.
#pragma once

#include <functional>

#include "core/binary_conv.h"
#include "nn/batchnorm_layer.h"
#include "nn/linear_layer.h"
#include "nn/sequential.h"

namespace hotspot::core {

struct BrnnConfig {
  std::int64_t image_size = 128;
  std::int64_t input_channels = 1;
  std::int64_t stem_filters = 16;
  std::int64_t stem_stride = 2;
  bool stem_pool = true;  // 2x2 max pool after the stem (ResNet-style)
  // One residual block per entry; "the deeper a layer is, the more filters
  // it contains" (Sec. 3.1).
  std::vector<std::int64_t> block_filters{16, 32, 64, 128, 256};
  std::vector<std::int64_t> block_strides{1, 2, 2, 2, 2};
  bitops::InputScaling scaling = bitops::InputScaling::kPerChannel;

  // The paper's 12-layer network for 128x128 clips.
  static BrnnConfig paper();
  // A reduced instance for CI-scale experiments (8 weight layers); same
  // block structure, fewer stages/filters, sized for `image_size` inputs.
  static BrnnConfig compact(std::int64_t image_size);

  // Weight layers: stem + 2 per block (+1 per projection shortcut counts as
  // part of its block in the paper's "12 layers" figure, which counts only
  // the main path) + fc.
  std::int64_t main_path_layer_count() const {
    return 1 + 2 * static_cast<std::int64_t>(block_filters.size()) + 1;
  }
};

class BrnnModel : public nn::Module {
 public:
  BrnnModel(const BrnnConfig& config, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;
  void set_training(bool training) override;
  void collect_state(const std::string& prefix,
                     std::vector<nn::NamedTensor>& out) override;

  // Switches every binary convolution between the float-sim and packed
  // XNOR-popcount inference paths.
  void set_backend(Backend backend);

  const BrnnConfig& config() const { return config_; }
  nn::Sequential& net() { return net_; }
  const std::vector<BinaryConv2d*>& binary_convs() const {
    return binary_convs_;
  }

  // Per-layer description lines of the top-level graph.
  std::vector<std::string> architecture() const { return net_.layer_names(); }

  // Stable per-layer trace-span labels ("brnn.layer.stem", ...), parallel
  // to the top-level modules of net(); forward() opens one span per entry.
  const std::vector<std::string>& layer_labels() const {
    return layer_labels_;
  }

  // Convenience: argmax labels for an image batch (eval mode must be set by
  // the caller).
  std::vector<int> predict(const Tensor& images);

  // Replaces the inference forward pass (graph executor hook; see
  // src/graph/executor.h). When set, forward() routes every non-training
  // call through the override instead of the module chain; training
  // forwards always run the modules so backward() stays valid. The override
  // must be a drop-in: same input contract, bit-identical logits. Pass an
  // empty function to restore the module chain.
  void set_forward_override(std::function<Tensor(const Tensor&)> override_fn) {
    forward_override_ = std::move(override_fn);
  }
  bool has_forward_override() const {
    return static_cast<bool>(forward_override_);
  }

  // Zeroes every binary convolution's roofline sample counter. Pair with
  // obs::reset_spans() so build_roofline() joins matching windows.
  void reset_profile();

 private:
  // Builds BN -> BinaryConv with the given geometry, registering the conv
  // for backend switching under the given roofline span label
  // ("brnn.conv.stem", "brnn.conv.block<i>{a,b,sc}").
  nn::ModulePtr conv_block(std::int64_t in, std::int64_t out,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, const std::string& label,
                           util::Rng& rng);

  BrnnConfig config_;
  nn::Sequential net_;
  std::vector<BinaryConv2d*> binary_convs_;
  std::vector<std::string> layer_labels_;
  std::function<Tensor(const Tensor&)> forward_override_;
};

}  // namespace hotspot::core
