// Training loop for hotspot classifiers (paper Sec. 3.3-3.4).
//
// Mini-batch gradient descent with NAdam, random horizontal/vertical flip
// augmentation, exponential learning-rate decay on validation-loss plateaus,
// and the biased-learning finetune phase: after the main phase the model is
// finetuned with non-hotspot targets smoothed to [1-eps, eps] (eps = 0.2),
// trading false alarms for detection accuracy.
//
// The trainer is model-agnostic (anything producing [n,2] logits) and the
// batch builder is pluggable so the DAC'17 baseline can feed DCT feature
// tensors through the same loop.
//
// Fault tolerance: with `checkpoint_path` set the trainer writes an atomic
// snapshot every `checkpoint_every` epochs carrying the model tensors, NAdam
// moment buffers, LR-scheduler progress, the RNG stream, epoch counters, and
// the per-epoch history. resume_from() restores all of it, and because the
// train/validation split travels with the checkpoint (instead of being
// re-drawn against the restored stream), a resumed train() replays the
// remaining epochs bit-identically to an uninterrupted run. A per-batch
// numeric-health guard watches the loss and
// gradient norm for NaN/Inf and applies a configurable containment policy.
#pragma once

#include <functional>
#include <limits>
#include <string>

#include "dataset/dataset.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "optim/lr_scheduler.h"
#include "optim/nadam.h"

namespace hotspot::core {

// What to do when a batch produces a non-finite loss or gradient norm. Every
// policy except kOff refuses to apply the poisoned update; they differ in
// how aggressively they contain the blow-up.
enum class NumericPolicy {
  kOff,       // no detection: apply the update (pre-guard behaviour)
  kSkipBatch, // drop the update, keep going
  kHalveLr,   // drop the update and halve the learning rate
  kRollback,  // drop the update and reload the last saved checkpoint's
              // weights + optimizer moments (falls back to kSkipBatch when
              // no checkpoint exists yet)
};

struct TrainerConfig {
  int batch_size = 32;
  int epochs = 8;
  int finetune_epochs = 2;
  float learning_rate = 0.02f;
  float bias_epsilon = 0.2f;       // Sec. 3.4.3
  float plateau_factor = 0.5f;     // exponential decay on plateau
  int plateau_patience = 5;
  double validation_fraction = 0.1;
  bool augment = true;             // random H/V flips (Sec. 3.4.1)
  // Each hotspot index appears this many times per epoch. 1 reproduces the
  // paper's raw-imbalance training; CI-scale configs raise it because a few
  // hundred samples x few epochs cannot amortize a 14:1 imbalance the way
  // the full benchmark x many epochs does.
  int hotspot_oversample = 1;
  double grad_clip = 5.0;          // 0 disables clipping
  std::uint64_t seed = 1;
  bool verbose = false;

  // NaN/Inf containment (see NumericPolicy). Detection costs one gradient-
  // norm pass per batch, which the default grad_clip already pays.
  NumericPolicy numeric_policy = NumericPolicy::kSkipBatch;

  // Empty disables periodic checkpoints. When set, a full training snapshot
  // is written atomically to this path every `checkpoint_every` epochs (and
  // after the final epoch), and the best-validation model so far is kept at
  // "<checkpoint_path>.best".
  std::string checkpoint_path;
  int checkpoint_every = 1;
};

struct EpochStats {
  int epoch = 0;
  bool finetune = false;
  double train_loss = 0.0;
  double validation_loss = 0.0;
  float learning_rate = 0.0f;
  // Numeric-health guard activity: batches whose loss/gradients came back
  // NaN/Inf, and batches whose update was dropped in response.
  int numeric_events = 0;
  int skipped_batches = 0;
  // Optimizer steps actually applied this epoch (skipped batches excluded).
  int steps = 0;
  // Wall time of the epoch (training pass + validation). Measured, not
  // checkpointed: epochs replayed from a resume report 0.
  double epoch_seconds = 0.0;
};

// Assembles the model-input tensor for the given sample indices.
using BatchBuilder = std::function<tensor::Tensor(
    const dataset::HotspotDataset&, const std::vector<std::size_t>&,
    util::Rng* augment_rng)>;

// Default builder: raw {0,1} images [n,1,ls,ls] with flip augmentation.
BatchBuilder image_batch_builder();

class Trainer {
 public:
  Trainer(nn::Module& model, const TrainerConfig& config,
          BatchBuilder batch_builder = image_batch_builder());

  // Runs the main phase then the biased finetune phase; returns per-epoch
  // statistics (main epochs first). After resume_from(), already-completed
  // epochs are skipped and their stats are returned verbatim, so the full
  // history is identical to an uninterrupted run.
  std::vector<EpochStats> train(const dataset::HotspotDataset& data);

  // Restores a snapshot written by a previous run with the same config,
  // model architecture, and dataset. Call before train(). Returns a typed
  // error (missing / truncated / corrupt / shape mismatch) on failure; the
  // trainer is left untouched unless the result is ok().
  nn::LoadResult resume_from(const std::string& path);

  // Path of the newest successfully written snapshot ("" until one exists;
  // resume_from() seeds it with the resumed path).
  const std::string& last_checkpoint_path() const { return last_checkpoint_; }

  // Lowest validation loss observed so far (+inf before the first epoch).
  double best_validation_loss() const { return best_validation_loss_; }

 private:
  // One pass over `indices` with the given label bias; fills stats.
  void run_epoch(const dataset::HotspotDataset& data,
                 const std::vector<std::size_t>& indices, float bias_epsilon,
                 util::Rng& rng, EpochStats& stats);

  // Mean loss over `indices` without updates (validation).
  double evaluate_loss(const dataset::HotspotDataset& data,
                       const std::vector<std::size_t>& indices);

  // Atomic full-state snapshot (model + optimizer + scheduler + RNG +
  // history).
  nn::SaveResult save_training_checkpoint(
      const std::string& path, const optim::PlateauDecay& scheduler,
      const std::vector<EpochStats>& history);

  // kRollback containment: reload weights and optimizer state from
  // last_checkpoint_, leaving the RNG stream and history untouched.
  void rollback_to_last_checkpoint();

  nn::Module& model_;
  TrainerConfig config_;
  BatchBuilder batch_builder_;
  optim::NAdam optimizer_;
  nn::SoftmaxCrossEntropy loss_;
  util::Rng rng_;

  std::string last_checkpoint_;
  double best_validation_loss_ = std::numeric_limits<double>::infinity();
  bool resumed_ = false;
  std::vector<EpochStats> resume_history_;
  optim::PlateauDecay::State scheduler_state_{};
  bool have_scheduler_state_ = false;
  // Train/validation split of the in-progress run. The fresh path draws it
  // from the training stream; resume_from() restores it from the checkpoint
  // (the training list is the pre-oversample base).
  std::vector<std::size_t> split_validation_;
  std::vector<std::size_t> split_training_;
};

// Batched inference over a whole dataset; returns predicted labels in
// dataset order. Puts the model into eval mode for the duration.
std::vector<int> predict_labels(
    nn::Module& model, const dataset::HotspotDataset& data, int batch_size,
    const BatchBuilder& batch_builder = image_batch_builder());

}  // namespace hotspot::core
