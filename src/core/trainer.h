// Training loop for hotspot classifiers (paper Sec. 3.3-3.4).
//
// Mini-batch gradient descent with NAdam, random horizontal/vertical flip
// augmentation, exponential learning-rate decay on validation-loss plateaus,
// and the biased-learning finetune phase: after the main phase the model is
// finetuned with non-hotspot targets smoothed to [1-eps, eps] (eps = 0.2),
// trading false alarms for detection accuracy.
//
// The trainer is model-agnostic (anything producing [n,2] logits) and the
// batch builder is pluggable so the DAC'17 baseline can feed DCT feature
// tensors through the same loop.
#pragma once

#include <functional>

#include "dataset/dataset.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "optim/lr_scheduler.h"
#include "optim/nadam.h"

namespace hotspot::core {

struct TrainerConfig {
  int batch_size = 32;
  int epochs = 8;
  int finetune_epochs = 2;
  float learning_rate = 0.02f;
  float bias_epsilon = 0.2f;       // Sec. 3.4.3
  float plateau_factor = 0.5f;     // exponential decay on plateau
  int plateau_patience = 5;
  double validation_fraction = 0.1;
  bool augment = true;             // random H/V flips (Sec. 3.4.1)
  // Each hotspot index appears this many times per epoch. 1 reproduces the
  // paper's raw-imbalance training; CI-scale configs raise it because a few
  // hundred samples x few epochs cannot amortize a 14:1 imbalance the way
  // the full benchmark x many epochs does.
  int hotspot_oversample = 1;
  double grad_clip = 5.0;          // 0 disables clipping
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  bool finetune = false;
  double train_loss = 0.0;
  double validation_loss = 0.0;
  float learning_rate = 0.0f;
};

// Assembles the model-input tensor for the given sample indices.
using BatchBuilder = std::function<tensor::Tensor(
    const dataset::HotspotDataset&, const std::vector<std::size_t>&,
    util::Rng* augment_rng)>;

// Default builder: raw {0,1} images [n,1,ls,ls] with flip augmentation.
BatchBuilder image_batch_builder();

class Trainer {
 public:
  Trainer(nn::Module& model, const TrainerConfig& config,
          BatchBuilder batch_builder = image_batch_builder());

  // Runs the main phase then the biased finetune phase; returns per-epoch
  // statistics (main epochs first).
  std::vector<EpochStats> train(const dataset::HotspotDataset& data);

 private:
  // One pass over `indices` with the given label bias; returns mean loss.
  double run_epoch(const dataset::HotspotDataset& data,
                   const std::vector<std::size_t>& indices,
                   float bias_epsilon, util::Rng& rng);

  // Mean loss over `indices` without updates (validation).
  double evaluate_loss(const dataset::HotspotDataset& data,
                       const std::vector<std::size_t>& indices);

  nn::Module& model_;
  TrainerConfig config_;
  BatchBuilder batch_builder_;
  optim::NAdam optimizer_;
  nn::SoftmaxCrossEntropy loss_;
  util::Rng rng_;
};

// Batched inference over a whole dataset; returns predicted labels in
// dataset order. Puts the model into eval mode for the duration.
std::vector<int> predict_labels(
    nn::Module& model, const dataset::HotspotDataset& data, int batch_size,
    const BatchBuilder& batch_builder = image_batch_builder());

}  // namespace hotspot::core
