// Shared inner loops of the packed XNOR-popcount convolution.
//
// BinaryConv2d::forward_packed and the graph executor's fused
// BN->Binarize->BinaryConv op both reduce to these two routines; keeping
// them in one place is what makes "fused executor bit-identical to the
// module chain" hold by construction rather than by re-implementation. The
// float accumulation order inside is pinned by the XnorKernel contract
// (kernels/xnor_kernel.h), so outputs are also identical across
// scalar/AVX2/AVX-512.
#pragma once

#include "bitops/bit_matrix.h"
#include "bitops/kernels/xnor_kernel.h"
#include "tensor/tensor.h"

namespace hotspot::core {

// Per-channel-scaled packed convolution (Eq. 14/15): for every output
// position, gathers that position's per-channel alpha_T scales and runs the
// kernel's weighted_sum(_x4) across the channel-blocked patch/filter rows,
// then applies the alpha_W epilogue. `patches` is the channel-blocked
// layout (one word per input channel), `alpha_t` is [N,Cin,outH,outW],
// `alpha_w` is [Cout]. Writes [N,Cout,outH,outW] into `output` (allocated
// by the caller so executors can reuse scratch).
void packed_conv_per_channel(const bitops::XnorKernel& kern,
                             const bitops::BitMatrix& patches,
                             const bitops::BitMatrix& filters,
                             const tensor::Tensor& alpha_t,
                             const tensor::Tensor& alpha_w,
                             std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t kk,
                             tensor::Tensor& output);

// Epilogue of the dense-layout path: scatters GEMM counts
// [N*positions, Cout] into NCHW and applies dst = count * alpha_w[co] *
// post, where post is the scalar-mode alpha map [N,1,outH,outW] or 1
// (pass post_alpha = nullptr). kNone callers pass nullptr.
void packed_conv_epilogue(const tensor::Tensor& counts,
                          const tensor::Tensor& alpha_w,
                          const tensor::Tensor* post_alpha,
                          std::int64_t out_channels, tensor::Tensor& output);

}  // namespace hotspot::core
