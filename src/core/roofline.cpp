#include "core/roofline.h"

#include <cstdio>
#include <sstream>

#include "bitops/kernels/xnor_kernel.h"
#include "core/cost_model.h"
#include "util/check.h"
#include "util/table.h"

namespace hotspot::core {
namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

// Replays the BrnnModel construction order to tag each conv as main-path
// or projection shortcut; parallel to network_cost()'s push order.
std::vector<bool> main_path_flags(const BrnnConfig& config) {
  std::vector<bool> flags;
  flags.push_back(true);  // stem
  std::int64_t channels = config.stem_filters;
  for (std::size_t stage = 0; stage < config.block_filters.size(); ++stage) {
    const std::int64_t filters = config.block_filters[stage];
    const std::int64_t stride = config.block_strides[stage];
    flags.push_back(true);  // conv a
    flags.push_back(true);  // conv b
    if (channels != filters || stride != 1) {
      flags.push_back(false);  // shortcut projection
    }
    channels = filters;
  }
  return flags;
}

}  // namespace

const RooflineLayer* RooflineReport::find(const std::string& label) const {
  for (const RooflineLayer& layer : layers) {
    if (layer.label == label) {
      return &layer;
    }
  }
  return nullptr;
}

std::int64_t RooflineReport::main_path_layer_count() const {
  std::int64_t count = 0;
  for (const RooflineLayer& layer : layers) {
    if (layer.main_path) {
      ++count;
    }
  }
  return count;
}

RooflineReport build_roofline(const BrnnModel& model,
                              const obs::SpanReport& spans) {
  const BrnnConfig& config = model.config();
  const std::vector<BinaryConv2d*>& convs = model.binary_convs();
  const NetworkCost cost = network_cost(config);
  HOTSPOT_CHECK_EQ(cost.layers.size(), convs.size())
      << "cost model and model disagree on conv layer count";
  const std::vector<bool> flags = main_path_flags(config);
  HOTSPOT_CHECK_EQ(flags.size(), convs.size());

  RooflineReport report;
  report.kernel = bitops::active_xnor_kernel().name;
  report.layers.reserve(convs.size() + 1);
  for (std::size_t i = 0; i < convs.size(); ++i) {
    const BinaryConv2d* conv = convs[i];
    const LayerCost& layer_cost = cost.layers[i];
    RooflineLayer layer;
    layer.label = conv->span_label();
    layer.geometry = layer_cost.name;
    layer.main_path = flags[i];
    layer.samples = conv->profile_samples();
    if (const obs::SpanStat* stat = spans.find(layer.label)) {
      layer.seconds = stat->total_seconds;
    }
    const double samples = static_cast<double>(layer.samples);
    // One packed word op stands in for 64 binary multiply-accumulates.
    layer.bitops =
        64.0 * static_cast<double>(layer_cost.packed_word_ops) * samples;
    layer.float_ops =
        static_cast<double>(layer_cost.packed_float_ops) * samples;
    report.layers.push_back(std::move(layer));
  }
  report.samples = convs.empty() ? 0 : convs.front()->profile_samples();

  // Classifier head: dense float layer, timed by the per-layer span the
  // model's forward already opens. It sees the same samples as the stem.
  const std::int64_t head_channels = config.block_filters.back();
  RooflineLayer head;
  head.label = "brnn.layer.head_fc";
  {
    std::ostringstream geometry;
    geometry << head_channels << "->2 fc";
    head.geometry = geometry.str();
  }
  head.main_path = true;
  head.samples = report.samples;
  if (const obs::SpanStat* stat = spans.find(head.label)) {
    head.seconds = stat->total_seconds;
  }
  head.float_ops = static_cast<double>(report.samples) * 2.0 *
                   static_cast<double>(head_channels) * 2.0;
  report.layers.push_back(std::move(head));

  for (const RooflineLayer& layer : report.layers) {
    report.total_seconds += layer.seconds;
  }
  for (RooflineLayer& layer : report.layers) {
    if (layer.seconds > 0.0) {
      layer.gops_per_second =
          (layer.bitops + layer.float_ops) / layer.seconds / 1e9;
    }
    if (report.total_seconds > 0.0) {
      layer.time_fraction = layer.seconds / report.total_seconds;
    }
  }
  return report;
}

std::string to_table(const RooflineReport& report) {
  util::Table table({"layer", "geometry", "path", "samples", "time_ms",
                     "bitops", "float_ops", "Gops/s", "time_%"});
  double total_bitops = 0.0;
  double total_float_ops = 0.0;
  for (const RooflineLayer& layer : report.layers) {
    table.add_row({layer.label, layer.geometry,
                   layer.main_path ? "main" : "shortcut",
                   std::to_string(layer.samples),
                   format_fixed(layer.seconds * 1e3, 3),
                   format_double(layer.bitops), format_double(layer.float_ops),
                   format_fixed(layer.gops_per_second, 2),
                   format_fixed(layer.time_fraction * 100.0, 1)});
    total_bitops += layer.bitops;
    total_float_ops += layer.float_ops;
  }
  const double total_gops =
      report.total_seconds > 0.0
          ? (total_bitops + total_float_ops) / report.total_seconds / 1e9
          : 0.0;
  table.add_row({"total", "", "", std::to_string(report.samples),
                 format_fixed(report.total_seconds * 1e3, 3),
                 format_double(total_bitops), format_double(total_float_ops),
                 format_fixed(total_gops, 2), "100.0"});
  return "xnor kernel: " + report.kernel + "\n" + table.to_string();
}

std::string to_json(const RooflineReport& report) {
  std::ostringstream out;
  out << "{\"layers\": [";
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const RooflineLayer& layer = report.layers[i];
    out << (i > 0 ? ", " : "") << "{\"label\": \"" << layer.label
        << "\", \"geometry\": \"" << layer.geometry << "\", \"main_path\": "
        << (layer.main_path ? "true" : "false")
        << ", \"samples\": " << layer.samples
        << ", \"seconds\": " << format_double(layer.seconds)
        << ", \"bitops\": " << format_double(layer.bitops)
        << ", \"float_ops\": " << format_double(layer.float_ops)
        << ", \"gops_per_second\": " << format_double(layer.gops_per_second)
        << ", \"time_fraction\": " << format_double(layer.time_fraction)
        << "}";
  }
  out << "], \"total_seconds\": " << format_double(report.total_seconds)
      << ", \"samples\": " << report.samples << ", \"kernel\": \""
      << report.kernel << "\"}";
  return out.str();
}

}  // namespace hotspot::core
