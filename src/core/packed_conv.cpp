#include "core/packed_conv.h"

#include <vector>

#include "util/parallel.h"

namespace hotspot::core {

void packed_conv_per_channel(const bitops::XnorKernel& kern,
                             const bitops::BitMatrix& patches,
                             const bitops::BitMatrix& filters,
                             const tensor::Tensor& alpha_t,
                             const tensor::Tensor& alpha_w,
                             std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t kk,
                             tensor::Tensor& output) {
  const std::int64_t n = output.dim(0);
  const std::int64_t out_h = output.dim(2);
  const std::int64_t out_w = output.dim(3);
  const std::int64_t positions = out_h * out_w;
  HOTSPOT_CHECK_EQ(patches.rows(), n * positions);
  // Run over the padded stride when patches and filters agree (the pad
  // words are zero bits with zero alpha, contributing exactly +0.0f), so
  // the kernel's weighted_sum takes its tail-free vector path.
  const std::int64_t words =
      patches.word_stride() == filters.word_stride() ? patches.word_stride()
                                                     : patches.words_per_row();
  const auto kkf = static_cast<float>(kk);
  util::parallel_for(0, n * positions, /*grain=*/32, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    // Per-chunk scratch for the gathered scales; chunks never share it.
    // Sized to `words` with the padding entries pinned at zero.
    std::vector<float> alpha_row(static_cast<std::size_t>(words), 0.0f);
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const std::uint64_t* prow = patches.row(row);
      // Gather this position's per-channel scales contiguously once; the
      // filter loop below reads them out_channels times.
      const float* asrc = alpha_t.data() + (ni * in_channels) * positions + p;
      for (std::int64_t ci = 0; ci < in_channels; ++ci) {
        alpha_row[static_cast<std::size_t>(ci)] = asrc[ci * positions];
      }
      float* out_base = output.data() + (ni * out_channels) * positions + p;
      // Four filters per kernel call: the patch row and gathered scales
      // are loaded once per channel block and feed four independent
      // accumulator chains (weighted_sum_x4 is bit-identical to four
      // weighted_sum calls by contract).
      std::int64_t co = 0;
      for (; co + 4 <= out_channels; co += 4) {
        float quad[4];
        kern.weighted_sum_x4(prow, filters.row(co), filters.row(co + 1),
                             filters.row(co + 2), filters.row(co + 3),
                             alpha_row.data(), words, kkf, quad);
        out_base[co * positions] = quad[0] * alpha_w[co];
        out_base[(co + 1) * positions] = quad[1] * alpha_w[co + 1];
        out_base[(co + 2) * positions] = quad[2] * alpha_w[co + 2];
        out_base[(co + 3) * positions] = quad[3] * alpha_w[co + 3];
      }
      for (; co < out_channels; ++co) {
        const float acc = kern.weighted_sum(prow, filters.row(co),
                                            alpha_row.data(), words, kkf);
        out_base[co * positions] = acc * alpha_w[co];
      }
    }
  });
}

void packed_conv_epilogue(const tensor::Tensor& counts,
                          const tensor::Tensor& alpha_w,
                          const tensor::Tensor* post_alpha,
                          std::int64_t out_channels, tensor::Tensor& output) {
  const std::int64_t n = output.dim(0);
  const std::int64_t out_h = output.dim(2);
  const std::int64_t out_w = output.dim(3);
  const std::int64_t positions = out_h * out_w;
  HOTSPOT_CHECK_EQ(counts.dim(0), n * positions);
  HOTSPOT_CHECK_EQ(counts.dim(1), out_channels);
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      // post = 1.0f multiplies exactly, so the no-scaling path matches a
      // hypothetical two-factor epilogue bit-for-bit.
      const float post =
          post_alpha != nullptr ? post_alpha->at4(ni, 0, p / out_w, p % out_w)
                                : 1.0f;
      const float* src = counts.data() + row * out_channels;
      float* dst = output.data() + ni * out_channels * positions + p;
      for (std::int64_t co = 0; co < out_channels; ++co) {
        dst[co * positions] = src[co] * alpha_w[co] * post;
      }
    }
  });
}

}  // namespace hotspot::core
