// Graph-aware roofline: one row per conv-bearing graph node (DESIGN.md
// §14.3).
//
// core/roofline.h joins spans with the *module* structure and knows nothing
// about fusion; this variant walks the executed graph instead, so a fused
// BN->Binarize->BinaryConv shows up as a single row whose cost-model bitops
// are attributed exactly once, with the geometry annotated "(fused)" /
// "(fused, emits bits)". The unfused core report is untouched — running
// core::build_roofline on a model without an override produces byte-for-
// byte the output it always did.
//
// Protocol mirrors the core profiler: enable tracing, reset windows
// (obs::reset_spans() + executor.reset_profile()), run the forwards, then
// call build_graph_roofline(executor, obs::collect_span_report()). The
// returned report reuses core::RooflineReport, so core::to_table /
// core::to_json format it unchanged.
#pragma once

#include "core/roofline.h"
#include "graph/executor.h"

namespace hotspot::graph {

core::RooflineReport build_graph_roofline(const GraphExecutor& executor,
                                          const obs::SpanReport& spans);

}  // namespace hotspot::graph
