// The computation graph: a topologically ordered op list with validation
// and shape inference (DESIGN.md §14).
//
// Nodes are appended in execution order and may only reference earlier
// nodes, so the node vector *is* the schedule — no separate toposort. Node 0
// is the graph input; the last node is the graph output. Structural
// validation (validate()) and shape/dtype inference (infer_shapes()) report
// problems as error strings instead of aborting, so malformed graphs can be
// rejected gracefully (and tested without death tests).
#pragma once

#include <string>
#include <vector>

#include "graph/op.h"

namespace hotspot::graph {

class Graph {
 public:
  // Appends `op` and returns its id. Aborts if an input id is not a
  // previously added node (the topological-order invariant); everything
  // softer is left to validate().
  int add(Op op);

  std::size_t size() const { return nodes_.size(); }
  const Op& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Op& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  int output_id() const { return static_cast<int>(nodes_.size()) - 1; }

  // Ids of every node that lists `id` among its inputs, ascending.
  std::vector<int> consumers(int id) const;

  // Structural checks: node 0 is the one kInput, arities match the op
  // kinds, and edge dtypes are legal (a kBinaryConv consumes a kBinarize,
  // a kBinarize consumes float, kAdd joins two floats, ...). Returns one
  // message per violation; empty means well-formed.
  std::vector<std::string> validate() const;

  // Computes every node's output TensorType from node 0's (which the
  // caller seeds; the builder uses [-1, C, H, W] with a symbolic batch).
  // Geometry comes from the attribute map, so graphs built without module
  // payloads infer the same way. Returns error messages and stops at the
  // first node that fails; empty means every shape was inferred.
  std::vector<std::string> infer_shapes();

  // One line per node: id, kind, name, inputs, output type.
  std::string to_string() const;

 private:
  std::vector<Op> nodes_;
};

}  // namespace hotspot::graph
