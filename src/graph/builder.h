// Lowers a BrnnModel's module chain into the graph IR (DESIGN.md §14.1).
#pragma once

#include "core/brnn.h"
#include "graph/graph.h"

namespace hotspot::graph {

// Walks model.net() top-level module by module and emits one op per layer:
// every conv block becomes the explicit BN -> Binarize -> BinaryConv
// triple (the binarize marker makes the Fig.-3 structure visible to the
// fold pass even though the module chain hides it inside BinaryConv2d),
// residual blocks become their main-path/shortcut chains joined by kAdd in
// tensor::add's operand order, and the head lowers to BN -> GlobalAvgPool
// -> Linear. Conv nodes are named by their trace span label so the
// roofline join works unchanged. Shapes are inferred with a symbolic batch
// (-1); the result is validated and shape-inferred (aborts on failure —
// a BrnnModel always lowers cleanly).
//
// The graph holds non-owning pointers into `model`, which must outlive it.
Graph build_graph(core::BrnnModel& model);

}  // namespace hotspot::graph
