#include "graph/roofline.h"

#include <sstream>

#include "bitops/kernels/xnor_kernel.h"
#include "core/binary_conv.h"
#include "core/cost_model.h"
#include "util/check.h"

namespace hotspot::graph {

core::RooflineReport build_graph_roofline(const GraphExecutor& executor,
                                          const obs::SpanReport& spans) {
  const Graph& graph = executor.graph();
  core::RooflineReport report;
  report.kernel = bitops::active_xnor_kernel().name;

  bool saw_conv = false;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const int id = static_cast<int>(i);
    const Op& op = graph.node(id);
    if (op.kind == OpKind::kBinaryConv ||
        op.kind == OpKind::kFusedBnBinaryConv) {
      HOTSPOT_CHECK(op.conv != nullptr) << "conv node without payload";
      const core::BinaryConv2d& conv = *op.conv;
      // The conv's input spatial extent: for a fused node the input edge is
      // the raw (pre-BN) tensor, for an unfused node the binarize marker —
      // both carry the conv's input H x W.
      const TensorType& in =
          graph.node(op.inputs[0]).output;
      HOTSPOT_CHECK_EQ(in.shape.size(), 4u);
      const core::LayerCost cost = core::binary_conv_cost(
          conv.in_channels(), conv.out_channels(), conv.spec().kernel_h,
          conv.spec().stride, conv.spec().pad, in.shape[2], in.shape[3],
          conv.scaling());

      core::RooflineLayer layer;
      layer.label = conv.span_label();
      {
        std::ostringstream geometry;
        geometry << cost.name;
        if (op.kind == OpKind::kFusedBnBinaryConv) {
          geometry << (op.emit_bits ? " (fused, emits bits)" : " (fused)");
        }
        layer.geometry = geometry.str();
      }
      layer.main_path = !op.attrs.at("shortcut").get<bool>();
      layer.samples = executor.node_samples(id);
      if (const obs::SpanStat* stat = spans.find(layer.label)) {
        layer.seconds = stat->total_seconds;
      }
      const double samples = static_cast<double>(layer.samples);
      layer.bitops =
          64.0 * static_cast<double>(cost.packed_word_ops) * samples;
      layer.float_ops = static_cast<double>(cost.packed_float_ops) * samples;
      if (!saw_conv) {
        report.samples = layer.samples;
        saw_conv = true;
      }
      report.layers.push_back(std::move(layer));
    } else if (op.kind == OpKind::kLinear) {
      core::RooflineLayer layer;
      layer.label = op.name;
      {
        std::ostringstream geometry;
        geometry << op.attr_int("in_features") << "->"
                 << op.attr_int("out_features") << " fc";
        layer.geometry = geometry.str();
      }
      layer.main_path = true;
      layer.samples = executor.node_samples(id);
      if (const obs::SpanStat* stat = spans.find(layer.label)) {
        layer.seconds = stat->total_seconds;
      }
      layer.float_ops = static_cast<double>(layer.samples) * 2.0 *
                        static_cast<double>(op.attr_int("in_features")) *
                        static_cast<double>(op.attr_int("out_features"));
      report.layers.push_back(std::move(layer));
    }
  }

  for (const core::RooflineLayer& layer : report.layers) {
    report.total_seconds += layer.seconds;
  }
  for (core::RooflineLayer& layer : report.layers) {
    if (layer.seconds > 0.0) {
      layer.gops_per_second =
          (layer.bitops + layer.float_ops) / layer.seconds / 1e9;
    }
    if (report.total_seconds > 0.0) {
      layer.time_fraction = layer.seconds / report.total_seconds;
    }
  }
  return report;
}

}  // namespace hotspot::graph
