// Exact threshold folding for BN -> Binarize (-> BinaryConv) chains
// (DESIGN.md §14.2).
//
// The unfused pipeline materializes y = gamma*((x - mean)*inv_std) + beta
// and binarizes it with the sign rule bit = (y >= 0). Because every IEEE
// float operation in that expression is weakly monotone in x (inv_std > 0;
// gamma's sign sets the direction), the bit as a function of x is a step
// function over the float order — so the whole BN + sign pair collapses to
// one per-channel comparison on the *raw* input:
//
//   bit(x) = (x >= bound) != flip
//
// with flip = true exactly for negative-gamma channels (y decreasing in x).
// `bound` is found by bisection over the total order of finite floats
// (monotone uint32 keys), evaluating the *exact same float expression* the
// unfused path computes at every probe — so the fold is bit-identical by
// construction for every finite input, never "close up to epsilon".
// Channels whose bit is constant (gamma == 0, or saturated statistics) get
// an infinite bound. Non-finite BN parameters make a channel unfoldable and
// the caller must leave that conv unfused.
//
// The second fold goes one step further down an all-binary chain: when a
// kNone conv A feeds the BN of another fused kNone conv B, B's input values
// are exactly float(count) * alpha_w_A[c] for integer popcount counts in
// [-K, K]. B's float threshold then becomes an integer threshold on A's raw
// counts, and A can emit bits directly without ever touching floats.
#pragma once

#include <cstdint>
#include <optional>

#include "bitops/bit_planes.h"

namespace hotspot::graph {

// y exactly as BatchNorm2d::forward computes it per element (two float
// roundings for xhat, two more for the affine; -ffp-contract is irrelevant
// here since this translation unit mirrors the layer's plain C++).
inline float bn_eval(float x, float mean, float inv_std, float gamma,
                     float beta) {
  const float xhat = (x - mean) * inv_std;
  return gamma * xhat + beta;
}

// Folds one channel's BN + sign into a threshold on the raw input.
// `inv_std` must be the layer's own inference factor
// (BatchNorm2d::inference_inv_std()), so the probes evaluate the identical
// expression. Returns nullopt when any parameter is non-finite (the channel
// then has no step-function representation and the conv must stay unfused).
std::optional<bitops::BinarizeThreshold> fold_bn_sign_threshold(
    float gamma, float beta, float mean, float inv_std);

// Integer threshold on a popcount count c in [-max_count, max_count] such
// that (c >= bound) != flip equals apply(t, float(c) * alpha) for every such
// c — i.e. the consumer's float threshold evaluated on the producer's exact
// epilogue value (count * alpha_w * 1.0f). float(c) is exact for any
// realizable count (|c| <= patch bits <= 2^24) and alpha >= 0 keeps the
// predicate monotone, so a linear scan finds the single transition.
struct CountThreshold {
  std::int64_t bound = 0;
  bool flip = false;
};

CountThreshold fold_count_threshold(const bitops::BinarizeThreshold& t,
                                    float alpha, std::int64_t max_count);

}  // namespace hotspot::graph
