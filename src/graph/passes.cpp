#include "graph/passes.h"

#include <utility>

#include "bitops/scaling.h"
#include "bitops/xnor_gemm.h"
#include "core/binary_conv.h"
#include "graph/threshold.h"
#include "nn/batchnorm_layer.h"
#include "util/check.h"

namespace hotspot::graph {
namespace {

// Rebuilds the graph without the nodes marked dead, remapping input ids.
// Dead nodes must have no surviving consumer.
Graph compact(Graph&& graph, const std::vector<bool>& dead) {
  std::vector<int> remap(graph.size(), -1);
  Graph out;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (dead[i]) {
      continue;
    }
    Op op = std::move(graph.node(static_cast<int>(i)));
    for (int& input : op.inputs) {
      HOTSPOT_CHECK(remap[static_cast<std::size_t>(input)] >= 0)
          << "live node consumes a removed node";
      input = remap[static_cast<std::size_t>(input)];
    }
    remap[i] = out.add(std::move(op));
  }
  return out;
}

// Patch bits of a dense-packed conv: the popcount count lives in
// [-max_count, max_count].
std::int64_t dense_patch_bits(const core::BinaryConv2d& conv) {
  return conv.in_channels() * conv.spec().kernel_h * conv.spec().kernel_w;
}

// (Re)derives emit_bounds/emit_flips for producer `a_id` from its sole
// consumer's float thresholds and the producer's current alpha_W. Called by
// fold_integer_thresholds when the edge is first converted and by
// plan_pack_layouts after a weight-version bump moves alpha_W.
void refresh_emit_bounds(Graph& graph, int a_id) {
  Op& a = graph.node(a_id);
  const std::vector<int> consumers = graph.consumers(a_id);
  HOTSPOT_CHECK_EQ(consumers.size(), 1u) << "emitting conv must have one consumer";
  const Op& b = graph.node(consumers[0]);
  HOTSPOT_CHECK_EQ(a.alpha_w.numel(), a.conv->out_channels());
  HOTSPOT_CHECK_EQ(b.thresholds.size(),
                   static_cast<std::size_t>(b.conv->in_channels()));
  const std::int64_t max_count = dense_patch_bits(*a.conv);
  const std::int64_t out_channels = a.conv->out_channels();
  a.emit_bounds.resize(static_cast<std::size_t>(out_channels));
  a.emit_flips.resize(static_cast<std::size_t>(out_channels));
  for (std::int64_t co = 0; co < out_channels; ++co) {
    const CountThreshold ct = fold_count_threshold(
        b.thresholds[static_cast<std::size_t>(co)], a.alpha_w[co], max_count);
    a.emit_bounds[static_cast<std::size_t>(co)] = ct.bound;
    a.emit_flips[static_cast<std::size_t>(co)] = ct.flip ? 1 : 0;
  }
}

}  // namespace

int fold_bn_binarize_conv(Graph& graph) {
  int fused = 0;
  std::vector<bool> dead(graph.size(), false);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    Op& conv_op = graph.node(static_cast<int>(i));
    if (conv_op.kind != OpKind::kBinaryConv) {
      continue;
    }
    const int bin_id = conv_op.inputs[0];
    const Op& bin = graph.node(bin_id);
    if (bin.kind != OpKind::kBinarize) {
      continue;
    }
    const int bn_id = bin.inputs[0];
    const Op& bn_op = graph.node(bn_id);
    if (bn_op.kind != OpKind::kBatchNorm || bn_op.bn == nullptr ||
        conv_op.conv == nullptr) {
      continue;
    }
    // The fold consumes the BN output entirely; any other consumer of the
    // BN (or of the marker) still needs the float tensor, so the chain must
    // be private to this conv.
    if (graph.consumers(bn_id).size() != 1 ||
        graph.consumers(bin_id).size() != 1) {
      continue;
    }

    nn::BatchNorm2d& bn = *bn_op.bn;
    const std::int64_t channels = bn.channels();
    const tensor::Tensor inv_std = bn.inference_inv_std();
    std::vector<bitops::BinarizeThreshold> thresholds;
    thresholds.reserve(static_cast<std::size_t>(channels));
    bool foldable = true;
    for (std::int64_t c = 0; c < channels; ++c) {
      const auto t = fold_bn_sign_threshold(bn.gamma().value[c],
                                            bn.beta().value[c],
                                            bn.running_mean()[c], inv_std[c]);
      if (!t.has_value()) {
        foldable = false;  // non-finite statistics: leave this conv unfused
        break;
      }
      thresholds.push_back(*t);
    }
    if (!foldable) {
      continue;
    }

    conv_op.kind = OpKind::kFusedBnBinaryConv;
    conv_op.inputs = {bn_op.inputs[0]};
    conv_op.thresholds = std::move(thresholds);
    conv_op.bn_mean.assign(bn.running_mean().data(),
                           bn.running_mean().data() + channels);
    conv_op.bn_inv_std.assign(inv_std.data(), inv_std.data() + channels);
    conv_op.bn_gamma.assign(bn.gamma().value.data(),
                            bn.gamma().value.data() + channels);
    conv_op.bn_beta.assign(bn.beta().value.data(),
                           bn.beta().value.data() + channels);
    dead[static_cast<std::size_t>(bn_id)] = true;
    dead[static_cast<std::size_t>(bin_id)] = true;
    ++fused;
  }
  if (fused > 0) {
    graph = compact(std::move(graph), dead);
    const auto errors = graph.infer_shapes();
    HOTSPOT_CHECK(errors.empty())
        << "fold broke shape inference: " << errors.front();
  }
  return fused;
}

int constant_fold_scales(Graph& graph) {
  int folded = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    Op& op = graph.node(static_cast<int>(i));
    if (op.kind != OpKind::kFusedBnBinaryConv || op.conv == nullptr ||
        op.alpha_w.numel() > 0) {
      continue;
    }
    op.alpha_w = bitops::weight_scales(op.conv->weight().value);
    ++folded;
  }
  return folded;
}

int fold_integer_thresholds(Graph& graph) {
  int converted = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    Op& a = graph.node(static_cast<int>(i));
    if (a.kind != OpKind::kFusedBnBinaryConv || a.conv == nullptr ||
        a.emit_bits || a.conv->scaling() != bitops::InputScaling::kNone) {
      continue;
    }
    const std::vector<int> consumers = graph.consumers(static_cast<int>(i));
    if (consumers.size() != 1) {
      continue;
    }
    const Op& b = graph.node(consumers[0]);
    // The consumer reads bits instead of floats, which removes both A's
    // float epilogue and B's binarize — but only a kNone consumer can: the
    // alpha_T input scales of the other modes need the real BN outputs.
    if (b.kind != OpKind::kFusedBnBinaryConv || b.conv == nullptr ||
        b.conv->scaling() != bitops::InputScaling::kNone) {
      continue;
    }
    HOTSPOT_CHECK_EQ(a.alpha_w.numel(), a.conv->out_channels())
        << "fold_integer_thresholds needs constant_fold_scales first";
    a.emit_bits = true;
    a.output.dtype = DType::kBits;
    refresh_emit_bounds(graph, static_cast<int>(i));
    ++converted;
  }
  return converted;
}

int plan_pack_layouts(Graph& graph) {
  const bitops::XnorKernel& kern = bitops::active_xnor_kernel();
  int planned = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    Op& op = graph.node(static_cast<int>(i));
    if (op.kind != OpKind::kFusedBnBinaryConv || op.conv == nullptr) {
      continue;
    }
    const std::uint64_t version = op.conv->weight().version;
    if (op.planned_kernel == &kern && op.planned_weight_version == version &&
        op.filters.rows() > 0) {
      continue;
    }
    const tensor::Tensor& weight = op.conv->weight().value;
    op.alpha_w = bitops::weight_scales(weight);
    op.filters = op.conv->scaling() == bitops::InputScaling::kPerChannel
                     ? bitops::pack_filters_channel_blocked(weight)
                     : bitops::pack_filters(weight);
    op.planned_kernel = &kern;
    op.planned_weight_version = version;
    if (op.emit_bits) {
      refresh_emit_bounds(graph, static_cast<int>(i));
    }
    ++planned;
  }
  return planned;
}

std::vector<PassResult> run_fusion_pipeline(Graph& graph) {
  std::vector<PassResult> results;
  results.push_back({"fold_bn_binarize_conv", fold_bn_binarize_conv(graph)});
  results.push_back({"constant_fold_scales", constant_fold_scales(graph)});
  results.push_back(
      {"fold_integer_thresholds", fold_integer_thresholds(graph)});
  return results;
}

}  // namespace hotspot::graph
