// Typed operations of the inference computation graph (DESIGN.md §14).
//
// The graph models the paper's network at the granularity the optimizer
// cares about: batch norm, the binarize step (explicit here, even though the
// module chain hides it inside BinaryConv2d), the binary convolution, pools,
// the residual add, and the classifier head. Ops carry
//   - a kind and a small typed attribute map (geometry, channel counts),
//   - an inferred output TensorType (dtype + NCHW shape, batch = -1),
//   - non-owning payload pointers into the BrnnModel the graph was built
//     from (the executor delegates unfused ops straight to the modules,
//     which is what makes the unfused graph bit-identical by construction),
//   - fold/plan state filled in by the passes in passes.h: per-channel
//     binarize thresholds, integer count thresholds for bit emission, and
//     the packed filter layout planned for the dispatched XNOR kernel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "bitops/bit_matrix.h"
#include "bitops/bit_planes.h"
#include "bitops/kernels/xnor_kernel.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace hotspot::nn {
class BatchNorm2d;
}
namespace hotspot::core {
class BinaryConv2d;
}

namespace hotspot::graph {

enum class OpKind {
  kInput,
  kBatchNorm,
  kBinarize,           // explicit Fig.-3 binarize marker between BN and conv
  kBinaryConv,         // unfused: delegates to BinaryConv2d::forward
  kFusedBnBinaryConv,  // BN+binarize folded into per-channel thresholds
  kMaxPool,
  kAdd,                // residual join, inputs = {main, shortcut}
  kGlobalAvgPool,
  kLinear,
};

const char* to_string(OpKind kind);

// Element type flowing along a graph edge. kBits edges carry BitPlanes (one
// bit per activation) instead of a float tensor; they only appear after the
// integer-threshold pass marks a fused producer with emit_bits.
enum class DType { kFloat, kBits };

const char* to_string(DType dtype);

struct TensorType {
  DType dtype = DType::kFloat;
  // NCHW (rank 4) or [N, features] (rank 2); batch is symbolic (-1).
  std::vector<std::int64_t> shape;

  bool operator==(const TensorType& other) const = default;
  std::string to_string() const;
};

// One typed attribute value (int / double / bool / string), in the style of
// mv::Attribute: construction fixes the type, get<T>() checks it.
class Attr {
 public:
  Attr() = default;
  explicit Attr(std::int64_t v) : value_(v) {}
  explicit Attr(double v) : value_(v) {}
  explicit Attr(bool v) : value_(v) {}
  explicit Attr(std::string v) : value_(std::move(v)) {}

  bool has_value() const {
    return !std::holds_alternative<std::monostate>(value_);
  }

  template <typename T>
  const T& get() const {
    HOTSPOT_CHECK(std::holds_alternative<T>(value_))
        << "attribute holds a different type";
    return std::get<T>(value_);
  }

  std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string> value_;
};

struct Op {
  OpKind kind = OpKind::kInput;
  // Unique name; conv-bearing nodes reuse the conv's trace span label
  // ("brnn.conv.block1a") so the roofline join works unchanged.
  std::string name;
  // Producer node ids; always < this node's id (the graph is topologically
  // ordered by construction).
  std::vector<int> inputs;
  std::map<std::string, Attr> attrs;
  // Filled by Graph::infer_shapes().
  TensorType output;

  // Non-owning payloads; the BrnnModel the graph was built from owns them
  // and must outlive the graph.
  nn::Module* module = nullptr;          // delegation target (unfused ops)
  nn::BatchNorm2d* bn = nullptr;         // kBatchNorm
  core::BinaryConv2d* conv = nullptr;    // kBinaryConv / kFusedBnBinaryConv

  // --- kFusedBnBinaryConv state (fold_bn_binarize_conv) ---
  // Per-input-channel thresholds on the *raw* (pre-BN) activations; bit =
  // apply(thresholds[c], x) equals sign(bn(x)) >= 0 for every finite x.
  std::vector<bitops::BinarizeThreshold> thresholds;
  // BN inference affine, retained for the alpha_T computation
  // (input_scales_*_affine): the scales see the bn *output* values without
  // the tensor being materialized.
  std::vector<float> bn_mean;
  std::vector<float> bn_inv_std;
  std::vector<float> bn_gamma;
  std::vector<float> bn_beta;

  // --- integer-count emission (fold_integer_thresholds) ---
  // When emit_bits is set, this kNone conv writes its output as BitPlanes:
  // out bit = (popcount count >= emit_bounds[co]) != emit_flips[co]. Its
  // sole consumer reads kBits and skips binarization entirely.
  bool emit_bits = false;
  std::vector<std::int64_t> emit_bounds;
  std::vector<std::uint8_t> emit_flips;

  // --- planned pack layout (plan_pack_layouts) ---
  // Filters packed for `planned_kernel`'s word padding at weight version
  // `planned_weight_version`, plus the constant-folded alpha_W. Only fused
  // nodes carry this; unfused convs keep using their own versioned cache.
  bitops::BitMatrix filters;
  tensor::Tensor alpha_w;
  const bitops::XnorKernel* planned_kernel = nullptr;
  std::uint64_t planned_weight_version = 0;

  std::int64_t attr_int(const std::string& key) const {
    const auto it = attrs.find(key);
    HOTSPOT_CHECK(it != attrs.end()) << "missing attribute " << key;
    return it->second.get<std::int64_t>();
  }
};

}  // namespace hotspot::graph
