#include "graph/threshold.h"

#include <bit>
#include <cfloat>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace hotspot::graph {
namespace {

// Order-preserving key: key(a) < key(b) iff a < b as floats, over all
// finite floats including both zeros (-0 keys just below +0). Negative
// floats have descending bit patterns, so they are bit-flipped; positive
// ones get the sign bit set to sort above them.
std::uint32_t float_key(float f) {
  const auto u = std::bit_cast<std::uint32_t>(f);
  return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
}

float key_float(std::uint32_t k) {
  const std::uint32_t u = (k & 0x80000000u) ? (k ^ 0x80000000u) : ~k;
  return std::bit_cast<float>(u);
}

}  // namespace

std::optional<bitops::BinarizeThreshold> fold_bn_sign_threshold(
    float gamma, float beta, float mean, float inv_std) {
  if (!std::isfinite(gamma) || !std::isfinite(beta) || !std::isfinite(mean) ||
      !std::isfinite(inv_std) || inv_std <= 0.0f) {
    return std::nullopt;
  }
  constexpr float kInf = std::numeric_limits<float>::infinity();

  // gamma == 0 first: y = (+/-0) + beta, which compares like beta itself for
  // every x whose xhat stays finite. For |x| large enough that (x - mean)
  // overflows to inf, 0 * inf is NaN and the unfused bit goes false — a
  // pattern no single comparison can express, so the identity guarantee is
  // scoped to non-overflowing inputs (see DESIGN.md §14.2; activations sit
  // many orders of magnitude below FLT_MAX).
  if (gamma == 0.0f) {
    return bitops::BinarizeThreshold{beta >= 0.0f ? -kInf : kInf, false};
  }

  // With gamma != 0 every probe is NaN-free: xhat is finite or +/-inf, and
  // gamma*inf + finite beta stays inf. The predicate P(x) = (y(x) >= 0) is
  // therefore weakly monotone over the float order — constant, or one
  // false->true step (gamma > 0), or one true->false step (gamma < 0).
  const auto predicate = [&](float x) {
    return bn_eval(x, mean, inv_std, gamma, beta) >= 0.0f;
  };
  const bool p_lo = predicate(-FLT_MAX);
  const bool p_hi = predicate(FLT_MAX);
  if (p_lo == p_hi) {
    return bitops::BinarizeThreshold{p_lo ? -kInf : kInf, false};
  }

  // Bisect for the smallest float (in total order) where P equals p_hi;
  // ~32 probes per channel.
  std::uint32_t lo = float_key(-FLT_MAX);
  std::uint32_t hi = float_key(FLT_MAX);
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (predicate(key_float(mid)) == p_hi) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const float bound = key_float(hi);
  // Increasing: bit = (x >= bound). Decreasing: bit = (x < bound), i.e.
  // the same comparison flipped. Both forms behave correctly when bound is
  // a signed zero because -0 >= +0 and +0 >= -0 are both true in IEEE,
  // matching P(-0) == P(+0) (the affine maps both zeros to values of equal
  // sign-bit comparison).
  return bitops::BinarizeThreshold{bound, /*flip=*/p_lo};
}

CountThreshold fold_count_threshold(const bitops::BinarizeThreshold& t,
                                    float alpha, std::int64_t max_count) {
  HOTSPOT_CHECK_GT(max_count, 0);
  HOTSPOT_CHECK(alpha >= 0.0f) << "alpha_W is an L1 mean, never negative";
  // q(c) replicates the unfused data path exactly: the kNone epilogue
  // produces float(count) * alpha_w * 1.0f, and the consumer's threshold is
  // applied to that value. alpha >= 0 makes q monotone in c.
  const auto q = [&](std::int64_t c) {
    return bitops::apply(t, static_cast<float>(c) * alpha);
  };
  const bool q_lo = q(-max_count);
  std::int64_t transition = max_count + 1;  // first c with q(c) != q_lo
  for (std::int64_t c = -max_count + 1; c <= max_count; ++c) {
    if (q(c) != q_lo) {
      transition = c;
      break;
    }
  }
  if (transition == max_count + 1) {
    // Constant: always-true -> bound below every realizable count;
    // always-false -> bound above.
    return q_lo ? CountThreshold{-max_count, false}
                : CountThreshold{max_count + 1, false};
  }
  // q_lo == false: bit = (c >= transition). q_lo == true: bit holds below
  // the transition, i.e. (c >= transition) flipped.
  return CountThreshold{transition, /*flip=*/q_lo};
}

}  // namespace hotspot::graph
