#include "graph/builder.h"

#include "nn/batchnorm_layer.h"
#include "nn/pool_layers.h"
#include "nn/residual.h"
#include "util/check.h"

namespace hotspot::graph {
namespace {

int add_batch_norm(Graph& graph, nn::BatchNorm2d& bn, const std::string& name,
                   int input) {
  Op op;
  op.kind = OpKind::kBatchNorm;
  op.name = name;
  op.inputs = {input};
  op.attrs.emplace("channels", Attr(bn.channels()));
  op.attrs.emplace("epsilon", Attr(static_cast<double>(bn.epsilon())));
  op.module = &bn;
  op.bn = &bn;
  return graph.add(std::move(op));
}

// BN -> Binarize -> BinaryConv from one Sequential conv block; returns the
// conv node id. `shortcut` tags projection convs (off the paper's main
// path) for the roofline.
int add_conv_block(Graph& graph, nn::Sequential& block, int input,
                   bool shortcut = false) {
  HOTSPOT_CHECK_EQ(block.size(), 2u)
      << "conv blocks are BatchNorm2d + BinaryConv2d";
  auto* bn = dynamic_cast<nn::BatchNorm2d*>(&block.at(0));
  auto* conv = dynamic_cast<core::BinaryConv2d*>(&block.at(1));
  HOTSPOT_CHECK(bn != nullptr && conv != nullptr)
      << "unexpected conv block layout";

  const int bn_id =
      add_batch_norm(graph, *bn, conv->span_label() + ".bn", input);

  Op binarize;
  binarize.kind = OpKind::kBinarize;
  binarize.name = conv->span_label() + ".binarize";
  binarize.inputs = {bn_id};
  const int bin_id = graph.add(std::move(binarize));

  Op conv_op;
  conv_op.kind = OpKind::kBinaryConv;
  conv_op.name = conv->span_label();
  conv_op.inputs = {bin_id};
  conv_op.attrs.emplace("in_channels", Attr(conv->in_channels()));
  conv_op.attrs.emplace("out_channels", Attr(conv->out_channels()));
  conv_op.attrs.emplace("kernel", Attr(conv->spec().kernel_h));
  conv_op.attrs.emplace("stride", Attr(conv->spec().stride));
  conv_op.attrs.emplace("pad", Attr(conv->spec().pad));
  conv_op.attrs.emplace("scaling",
                        Attr(std::string(bitops::to_string(conv->scaling()))));
  conv_op.attrs.emplace("shortcut", Attr(shortcut));
  conv_op.module = conv;
  conv_op.conv = conv;
  return graph.add(std::move(conv_op));
}

}  // namespace

Graph build_graph(core::BrnnModel& model) {
  Graph graph;
  const core::BrnnConfig& config = model.config();

  Op input;
  input.kind = OpKind::kInput;
  input.name = "input";
  input.output = {DType::kFloat,
                  {-1, config.input_channels, config.image_size,
                   config.image_size}};
  int current = graph.add(std::move(input));

  nn::Sequential& net = model.net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Module& layer = net.at(i);
    if (auto* block = dynamic_cast<nn::Sequential*>(&layer)) {
      current = add_conv_block(graph, *block, current);
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
      Op op;
      op.kind = OpKind::kMaxPool;
      op.name = model.layer_labels()[i];
      op.inputs = {current};
      op.attrs.emplace("window", Attr(pool->spec().window));
      op.attrs.emplace("stride", Attr(pool->spec().stride));
      op.module = pool;
      current = graph.add(std::move(op));
    } else if (auto* residual = dynamic_cast<nn::ResidualBlock*>(&layer)) {
      auto* main_path = dynamic_cast<nn::Sequential*>(&residual->main_path());
      HOTSPOT_CHECK(main_path != nullptr) << "residual main path layout";
      const int block_input = current;
      int main_out = block_input;
      for (std::size_t j = 0; j < main_path->size(); ++j) {
        auto* conv_block =
            dynamic_cast<nn::Sequential*>(&main_path->at(j));
        HOTSPOT_CHECK(conv_block != nullptr) << "residual main path layout";
        main_out = add_conv_block(graph, *conv_block, main_out);
      }
      int shortcut_out = block_input;  // identity connection
      if (auto* shortcut =
              dynamic_cast<nn::Sequential*>(residual->shortcut())) {
        shortcut_out =
            add_conv_block(graph, *shortcut, block_input, /*shortcut=*/true);
      } else {
        HOTSPOT_CHECK(!residual->has_projection())
            << "unexpected shortcut layout";
      }
      Op add;
      add.kind = OpKind::kAdd;
      add.name = model.layer_labels()[i] + ".add";
      // tensor::add(main, shortcut): operand order matches
      // ResidualBlock::forward, so the float sum is identical.
      add.inputs = {main_out, shortcut_out};
      current = graph.add(std::move(add));
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
      current = add_batch_norm(graph, *bn, model.layer_labels()[i], current);
    } else if (auto* gap = dynamic_cast<nn::GlobalAvgPool*>(&layer)) {
      Op op;
      op.kind = OpKind::kGlobalAvgPool;
      op.name = model.layer_labels()[i];
      op.inputs = {current};
      op.module = gap;
      current = graph.add(std::move(op));
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
      Op op;
      op.kind = OpKind::kLinear;
      op.name = model.layer_labels()[i];
      op.inputs = {current};
      op.attrs.emplace("in_features", Attr(fc->in_features()));
      op.attrs.emplace("out_features", Attr(fc->out_features()));
      op.module = fc;
      current = graph.add(std::move(op));
    } else {
      HOTSPOT_CHECK(false) << "unsupported top-level layer: " << layer.name();
    }
  }

  const auto structural = graph.validate();
  HOTSPOT_CHECK(structural.empty())
      << "lowered graph failed validation: " << structural.front();
  const auto shape_errors = graph.infer_shapes();
  HOTSPOT_CHECK(shape_errors.empty())
      << "lowered graph failed shape inference: " << shape_errors.front();
  return graph;
}

}  // namespace hotspot::graph
