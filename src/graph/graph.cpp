#include "graph/graph.h"

#include <sstream>

#include "tensor/conv.h"

namespace hotspot::graph {
namespace {

// Expected input arity per op kind; -1 never occurs.
int arity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return 0;
    case OpKind::kAdd:
      return 2;
    default:
      return 1;
  }
}

std::string describe(int id, const Op& op) {
  std::ostringstream out;
  out << "node " << id << " (" << to_string(op.kind)
      << (op.name.empty() ? "" : " " + op.name) << ")";
  return out.str();
}

// Whether `producer` yields a float tensor on its output edge.
bool produces_float(const Op& producer) {
  if (producer.kind == OpKind::kBinarize) {
    return false;
  }
  if (producer.kind == OpKind::kFusedBnBinaryConv && producer.emit_bits) {
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kBatchNorm:
      return "batch_norm";
    case OpKind::kBinarize:
      return "binarize";
    case OpKind::kBinaryConv:
      return "binary_conv";
    case OpKind::kFusedBnBinaryConv:
      return "fused_bn_binary_conv";
    case OpKind::kMaxPool:
      return "max_pool";
    case OpKind::kAdd:
      return "add";
    case OpKind::kGlobalAvgPool:
      return "global_avg_pool";
    case OpKind::kLinear:
      return "linear";
  }
  return "?";
}

const char* to_string(DType dtype) {
  return dtype == DType::kFloat ? "float" : "bits";
}

std::string TensorType::to_string() const {
  std::ostringstream out;
  out << graph::to_string(dtype) << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    out << (i > 0 ? "," : "") << shape[i];
  }
  out << "]";
  return out.str();
}

std::string Attr::to_string() const {
  std::ostringstream out;
  if (const auto* v = std::get_if<std::int64_t>(&value_)) {
    out << *v;
  } else if (const auto* v = std::get_if<double>(&value_)) {
    out << *v;
  } else if (const auto* v = std::get_if<bool>(&value_)) {
    out << (*v ? "true" : "false");
  } else if (const auto* v = std::get_if<std::string>(&value_)) {
    out << *v;
  } else {
    out << "<empty>";
  }
  return out.str();
}

int Graph::add(Op op) {
  const int id = static_cast<int>(nodes_.size());
  for (const int input : op.inputs) {
    HOTSPOT_CHECK(input >= 0 && input < id)
        << "graph nodes may only consume earlier nodes (node " << id
        << " references " << input << ")";
  }
  nodes_.push_back(std::move(op));
  return id;
}

std::vector<int> Graph::consumers(int id) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const int input : nodes_[i].inputs) {
      if (input == id) {
        out.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> errors;
  if (nodes_.empty()) {
    errors.push_back("graph is empty");
    return errors;
  }
  if (nodes_.front().kind != OpKind::kInput) {
    errors.push_back("node 0 must be the input op");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Op& op = nodes_[i];
    const int id = static_cast<int>(i);
    if (op.kind == OpKind::kInput && id != 0) {
      errors.push_back(describe(id, op) + ": only node 0 may be an input");
      continue;
    }
    if (static_cast<int>(op.inputs.size()) != arity(op.kind)) {
      std::ostringstream msg;
      msg << describe(id, op) << ": expects " << arity(op.kind)
          << " input(s), has " << op.inputs.size();
      errors.push_back(msg.str());
      continue;
    }
    bool inputs_ok = true;
    for (const int input : op.inputs) {
      if (input < 0 || input >= id) {
        errors.push_back(describe(id, op) + ": input id out of range");
        inputs_ok = false;
      }
    }
    if (!inputs_ok) {
      continue;
    }
    // Edge dtype rules. The unfused conv must consume the explicit binarize
    // marker (the executor reaches through it to the real-valued BN output,
    // mirroring how BinaryConv2d binarizes internally); everything else
    // consumes float, except a fused conv, which may also consume the bits
    // a fused kNone producer emits.
    switch (op.kind) {
      case OpKind::kBinaryConv:
        if (nodes_[static_cast<std::size_t>(op.inputs[0])].kind !=
            OpKind::kBinarize) {
          errors.push_back(describe(id, op) +
                           ": input must be a binarize node");
        }
        break;
      case OpKind::kFusedBnBinaryConv: {
        const Op& producer = nodes_[static_cast<std::size_t>(op.inputs[0])];
        if (!produces_float(producer) &&
            !(producer.kind == OpKind::kFusedBnBinaryConv &&
              producer.emit_bits)) {
          errors.push_back(describe(id, op) +
                           ": input must be float or emitted bits");
        }
        break;
      }
      case OpKind::kInput:
        break;
      default:
        for (const int input : op.inputs) {
          if (!produces_float(nodes_[static_cast<std::size_t>(input)])) {
            errors.push_back(describe(id, op) +
                             ": requires a float input edge");
          }
        }
        break;
    }
  }
  return errors;
}

std::vector<std::string> Graph::infer_shapes() {
  std::vector<std::string> errors;
  auto fail = [&](int id, const std::string& message) {
    errors.push_back(describe(id, nodes_[static_cast<std::size_t>(id)]) +
                     ": " + message);
  };
  if (nodes_.empty()) {
    errors.push_back("graph is empty");
    return errors;
  }
  if (nodes_.front().output.shape.empty()) {
    errors.push_back("input node has no seeded output shape");
    return errors;
  }

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const int id = static_cast<int>(i);
    Op& op = nodes_[i];
    if (op.inputs.empty() || op.inputs[0] < 0 || op.inputs[0] >= id) {
      fail(id, "missing or out-of-range input");
      return errors;
    }
    const TensorType& in = nodes_[static_cast<std::size_t>(op.inputs[0])].output;
    switch (op.kind) {
      case OpKind::kInput:
        fail(id, "only node 0 may be an input");
        return errors;
      case OpKind::kBatchNorm: {
        if (in.shape.size() != 4) {
          fail(id, "batch norm expects a rank-4 input");
          return errors;
        }
        const std::int64_t channels = op.attr_int("channels");
        if (in.shape[1] != channels) {
          std::ostringstream msg;
          msg << "channel mismatch: input has " << in.shape[1]
              << ", layer normalizes " << channels;
          fail(id, msg.str());
          return errors;
        }
        op.output = {DType::kFloat, in.shape};
        break;
      }
      case OpKind::kBinarize:
        if (in.shape.size() != 4) {
          fail(id, "binarize expects a rank-4 input");
          return errors;
        }
        op.output = {DType::kBits, in.shape};
        break;
      case OpKind::kBinaryConv:
      case OpKind::kFusedBnBinaryConv: {
        if (in.shape.size() != 4) {
          fail(id, "conv expects a rank-4 input");
          return errors;
        }
        const std::int64_t in_channels = op.attr_int("in_channels");
        if (in.shape[1] != in_channels) {
          std::ostringstream msg;
          msg << "channel mismatch: input has " << in.shape[1]
              << ", conv expects " << in_channels;
          fail(id, msg.str());
          return errors;
        }
        const std::int64_t kernel = op.attr_int("kernel");
        const std::int64_t stride = op.attr_int("stride");
        const std::int64_t pad = op.attr_int("pad");
        const std::int64_t out_h =
            tensor::conv_out_extent(in.shape[2], kernel, stride, pad);
        const std::int64_t out_w =
            tensor::conv_out_extent(in.shape[3], kernel, stride, pad);
        if (out_h <= 0 || out_w <= 0) {
          fail(id, "conv output would be empty");
          return errors;
        }
        op.output = {op.emit_bits ? DType::kBits : DType::kFloat,
                     {in.shape[0], op.attr_int("out_channels"), out_h, out_w}};
        break;
      }
      case OpKind::kMaxPool: {
        if (in.shape.size() != 4) {
          fail(id, "max pool expects a rank-4 input");
          return errors;
        }
        const std::int64_t window = op.attr_int("window");
        const std::int64_t stride = op.attr_int("stride");
        // tensor::max_pool2d's extent rule: full windows, plus one partial
        // window when the image is smaller than the window.
        auto extent = [&](std::int64_t n) {
          if (n < window) {
            return n > 0 ? std::int64_t{1} : std::int64_t{0};
          }
          return (n - window) / stride + 1;
        };
        const std::int64_t out_h = extent(in.shape[2]);
        const std::int64_t out_w = extent(in.shape[3]);
        if (out_h <= 0 || out_w <= 0) {
          fail(id, "pool output would be empty");
          return errors;
        }
        op.output = {DType::kFloat, {in.shape[0], in.shape[1], out_h, out_w}};
        break;
      }
      case OpKind::kAdd: {
        const TensorType& rhs =
            nodes_[static_cast<std::size_t>(op.inputs[1])].output;
        if (in.shape != rhs.shape) {
          fail(id, "operand shapes differ: " + in.to_string() + " vs " +
                       rhs.to_string());
          return errors;
        }
        op.output = {DType::kFloat, in.shape};
        break;
      }
      case OpKind::kGlobalAvgPool:
        if (in.shape.size() != 4) {
          fail(id, "global avg pool expects a rank-4 input");
          return errors;
        }
        op.output = {DType::kFloat, {in.shape[0], in.shape[1]}};
        break;
      case OpKind::kLinear: {
        if (in.shape.size() != 2) {
          fail(id, "linear expects a rank-2 input");
          return errors;
        }
        const std::int64_t in_features = op.attr_int("in_features");
        if (in.shape[1] != in_features) {
          std::ostringstream msg;
          msg << "feature mismatch: input has " << in.shape[1]
              << ", layer expects " << in_features;
          fail(id, msg.str());
          return errors;
        }
        op.output = {DType::kFloat, {in.shape[0], op.attr_int("out_features")}};
        break;
      }
    }
  }
  return errors;
}

std::string Graph::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Op& op = nodes_[i];
    out << i << ": " << graph::to_string(op.kind);
    if (!op.name.empty()) {
      out << " " << op.name;
    }
    out << "(";
    for (std::size_t j = 0; j < op.inputs.size(); ++j) {
      out << (j > 0 ? ", " : "") << op.inputs[j];
    }
    out << ") -> " << op.output.to_string();
    if (op.kind == OpKind::kFusedBnBinaryConv) {
      out << (op.emit_bits ? " [fused, emits bits]" : " [fused]");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hotspot::graph
