// Graph executor: runs the (optimized) graph through the existing packed
// kernels, bit-identically to the module chain (DESIGN.md §14.3).
//
// Identity strategy, by construction rather than by tolerance:
//   - unfused nodes delegate to the very module pointers the chain runs
//     (same code, same floats);
//   - fused nodes run the shared packed-conv primitives
//     (core/packed_conv.h) on bits produced by exact per-channel thresholds
//     (graph/threshold.h) and alpha_T scales computed by the *_affine
//     variants that replicate BatchNorm2d's float op order — every float
//     that reaches the kernels equals its unfused counterpart.
// The guarantee covers finite activations; see threshold.h for the one
// (unreachable) overflow caveat.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/brnn.h"
#include "graph/graph.h"
#include "graph/passes.h"
#include "obs/trace.h"

namespace hotspot::graph {

enum class FusionMode {
  kOff,    // uninstall: the model runs its module chain
  kGraph,  // run the unfused graph (pure delegation; sanity baseline)
  kFused,  // run the full fusion pipeline, then execute
};

const char* to_string(FusionMode mode);

class GraphExecutor {
 public:
  // Builds the graph from `model` and, for kFused, runs the fusion
  // pipeline. The model must outlive the executor. Pack layouts are planned
  // lazily at run() so they always match the dispatched XNOR kernel.
  GraphExecutor(core::BrnnModel& model, FusionMode mode);

  // One inference forward; same input contract as BrnnModel::forward.
  // Thread-safe for concurrent calls as long as weights and the active
  // kernel do not change mid-call (the same contract the module chain's
  // packed cache has); a detected weight-version or kernel change re-plans
  // under a mutex before executing.
  tensor::Tensor run(const tensor::Tensor& input);

  const Graph& graph() const { return graph_; }
  FusionMode mode() const { return mode_; }
  const core::BrnnModel& model() const { return *model_; }
  const std::vector<PassResult>& pass_results() const { return passes_; }

  // Per-node forward sample counters for the graph roofline; advance on
  // every run() (delegated convs additionally keep their own counters).
  std::uint64_t node_samples(int id) const {
    return samples_[static_cast<std::size_t>(id)].load(
        std::memory_order_relaxed);
  }
  void reset_profile();

 private:
  const tensor::Tensor& value_of(int id, const tensor::Tensor& input,
                                 const std::vector<tensor::Tensor>& values,
                                 const std::vector<int>& alias) const;
  void plan_if_stale();
  tensor::Tensor exec_fused(const Op& op, const tensor::Tensor* x,
                            const bitops::BitPlanes* in_bits,
                            bitops::BitPlanes* out_bits);

  core::BrnnModel* model_;
  FusionMode mode_;
  Graph graph_;
  std::vector<PassResult> passes_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> samples_;
  std::mutex plan_mutex_;
};

// Convenience wiring: builds an executor and installs it as the model's
// inference forward override (kOff clears the override and returns null).
// Install *after* loading checkpoints — passes snapshot BN statistics and
// thresholds at build time; only weight updates and kernel switches are
// re-detected automatically. The returned executor is kept alive by the
// override closure; the model must outlive both.
std::shared_ptr<GraphExecutor> install_executor(core::BrnnModel& model,
                                                FusionMode mode);

}  // namespace hotspot::graph
