#include "graph/executor.h"

#include <atomic>
#include <string>

#include "bitops/scaling.h"
#include "bitops/xnor_gemm.h"
#include "core/packed_conv.h"
#include "graph/builder.h"
#include "graph/passes.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace hotspot::graph {

using tensor::Tensor;

const char* to_string(FusionMode mode) {
  switch (mode) {
    case FusionMode::kOff:
      return "off";
    case FusionMode::kGraph:
      return "graph";
    case FusionMode::kFused:
      return "fused";
  }
  return "?";
}

GraphExecutor::GraphExecutor(core::BrnnModel& model, FusionMode mode)
    : model_(&model), mode_(mode), graph_(build_graph(model)) {
  HOTSPOT_CHECK(mode != FusionMode::kOff)
      << "kOff means no executor; use install_executor";
  if (mode == FusionMode::kFused) {
    passes_ = run_fusion_pipeline(graph_);
  }
  samples_ = std::make_unique<std::atomic<std::uint64_t>[]>(graph_.size());
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    samples_[i].store(0, std::memory_order_relaxed);
  }
}

void GraphExecutor::reset_profile() {
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    samples_[i].store(0, std::memory_order_relaxed);
  }
}

const Tensor& GraphExecutor::value_of(int id, const Tensor& input,
                                      const std::vector<Tensor>& values,
                                      const std::vector<int>& alias) const {
  const int resolved =
      alias[static_cast<std::size_t>(id)] >= 0
          ? alias[static_cast<std::size_t>(id)]
          : id;
  return resolved == 0 ? input : values[static_cast<std::size_t>(resolved)];
}

void GraphExecutor::plan_if_stale() {
  if (mode_ != FusionMode::kFused) {
    return;
  }
  const bitops::XnorKernel* kern = &bitops::active_xnor_kernel();
  auto stale = [&] {
    for (std::size_t i = 0; i < graph_.size(); ++i) {
      const Op& op = graph_.node(static_cast<int>(i));
      if (op.kind == OpKind::kFusedBnBinaryConv &&
          (op.planned_kernel != kern ||
           op.planned_weight_version != op.conv->weight().version)) {
        return true;
      }
    }
    return false;
  };
  if (!stale()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(plan_mutex_);
  if (stale()) {
    plan_pack_layouts(graph_);
  }
}

Tensor GraphExecutor::run(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  plan_if_stale();
  HOTSPOT_TRACE_SPAN("graph.execute");
  const auto batch = static_cast<std::uint64_t>(input.dim(0));
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    samples_[i].fetch_add(batch, std::memory_order_relaxed);
  }

  const int count = static_cast<int>(graph_.size());
  std::vector<Tensor> values(graph_.size());
  std::vector<bitops::BitPlanes> planes(graph_.size());
  // Binarize markers are pass-throughs (the conv they feed binarizes
  // internally); alias[id] points at the tensor a marker forwards.
  std::vector<int> alias(graph_.size(), -1);

  for (int id = 1; id < count; ++id) {
    const Op& op = graph_.node(id);
    switch (op.kind) {
      case OpKind::kInput:
        HOTSPOT_CHECK(false) << "input op after node 0";
        break;
      case OpKind::kBinarize: {
        const int src = op.inputs[0];
        alias[static_cast<std::size_t>(id)] =
            alias[static_cast<std::size_t>(src)] >= 0
                ? alias[static_cast<std::size_t>(src)]
                : src;
        break;
      }
      case OpKind::kBinaryConv:
        // Delegation: the exact module the chain runs, on the exact BN
        // output (reached through the marker).
        HOTSPOT_CHECK(op.module != nullptr) << "conv node without payload";
        values[static_cast<std::size_t>(id)] =
            op.module->forward(value_of(op.inputs[0], input, values, alias));
        break;
      case OpKind::kFusedBnBinaryConv: {
        const Op& producer =
            graph_.node(op.inputs[0]);
        const bool bits_in = producer.kind == OpKind::kFusedBnBinaryConv &&
                             producer.emit_bits;
        const Tensor* x =
            bits_in ? nullptr
                    : &value_of(op.inputs[0], input, values, alias);
        const bitops::BitPlanes* in_bits =
            bits_in ? &planes[static_cast<std::size_t>(op.inputs[0])]
                    : nullptr;
        bitops::BitPlanes* out_bits =
            op.emit_bits ? &planes[static_cast<std::size_t>(id)] : nullptr;
        // Same span + sample protocol as BinaryConv2d::forward, so the
        // roofline join and timelines keep working per conv label.
        if (!op.conv->span_label().empty() && obs::trace_enabled()) {
          obs::TraceSpan span(op.conv->span_label());
          values[static_cast<std::size_t>(id)] =
              exec_fused(op, x, in_bits, out_bits);
        } else {
          values[static_cast<std::size_t>(id)] =
              exec_fused(op, x, in_bits, out_bits);
        }
        break;
      }
      case OpKind::kAdd: {
        obs::TraceSpan span(op.name);
        values[static_cast<std::size_t>(id)] =
            tensor::add(value_of(op.inputs[0], input, values, alias),
                        value_of(op.inputs[1], input, values, alias));
        break;
      }
      case OpKind::kBatchNorm:
      case OpKind::kMaxPool:
      case OpKind::kGlobalAvgPool:
      case OpKind::kLinear: {
        HOTSPOT_CHECK(op.module != nullptr)
            << "delegated node without payload";
        obs::TraceSpan span(op.name);
        values[static_cast<std::size_t>(id)] =
            op.module->forward(value_of(op.inputs[0], input, values, alias));
        break;
      }
    }
  }
  return values[static_cast<std::size_t>(graph_.output_id())];
}

Tensor GraphExecutor::exec_fused(const Op& op, const Tensor* x,
                                 const bitops::BitPlanes* in_bits,
                                 bitops::BitPlanes* out_bits) {
  core::BinaryConv2d& conv = *op.conv;
  const tensor::ConvSpec& spec = conv.spec();
  const bitops::XnorKernel& kern = bitops::active_xnor_kernel();
  const std::string gemm_span =
      std::string("binary_conv.gemm.") + kern.name;
  const std::int64_t n = x != nullptr ? x->dim(0) : in_bits->batch();
  const std::int64_t in_h = x != nullptr ? x->dim(2) : in_bits->height();
  const std::int64_t in_w = x != nullptr ? x->dim(3) : in_bits->width();
  const std::int64_t out_h =
      tensor::conv_out_extent(in_h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(in_w, spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t out_channels = conv.out_channels();
  const bitops::ChannelAffine affine{op.bn_mean.data(), op.bn_inv_std.data(),
                                     op.bn_gamma.data(), op.bn_beta.data()};

  if (conv.scaling() == bitops::InputScaling::kPerChannel) {
    HOTSPOT_CHECK(x != nullptr) << "per-channel fusion needs float input";
    bitops::BitMatrix patches;
    Tensor alpha_t;
    {
      HOTSPOT_TRACE_SPAN("binary_conv.pack");
      const bitops::BitPlanes bits(*x, op.thresholds.data());
      patches = bitops::pack_patches_channel_blocked(bits, spec);
      alpha_t = bitops::input_scales_per_channel_affine(*x, spec, affine);
    }
    Tensor output({n, out_channels, out_h, out_w});
    HOTSPOT_TRACE_SPAN(gemm_span);
    core::packed_conv_per_channel(kern, patches, op.filters, alpha_t,
                                  op.alpha_w, conv.in_channels(), out_channels,
                                  spec.kernel_h * spec.kernel_w, output);
    return output;
  }

  // Dense layout (kScalar / kNone).
  bitops::BitMatrix patches;
  {
    HOTSPOT_TRACE_SPAN("binary_conv.pack");
    if (in_bits != nullptr) {
      patches = bitops::pack_patches(*in_bits, spec);
    } else {
      const bitops::BitPlanes bits(*x, op.thresholds.data());
      patches = bitops::pack_patches(bits, spec);
    }
  }
  Tensor counts;
  {
    HOTSPOT_TRACE_SPAN(gemm_span);
    counts = bitops::xnor_gemm(patches, op.filters);
  }

  if (out_bits != nullptr) {
    // Integer-threshold emission: the count compares against the folded
    // bound and the bit goes straight into the consumer's planes — no float
    // epilogue, no sign pass, no tensor.
    HOTSPOT_TRACE_SPAN("binary_conv.emit_bits");
    *out_bits = bitops::BitPlanes(n, out_channels, out_h, out_w);
    const float* count_data = counts.data();
    util::parallel_for(
        0, n * out_channels, /*grain=*/1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t plane = lo; plane < hi; ++plane) {
            const std::int64_t ni = plane / out_channels;
            const std::int64_t co = plane % out_channels;
            // float(bound) is exact (|bound| <= patch bits + 1), so the
            // float compare equals the integer compare on integer counts.
            const float bound = static_cast<float>(
                op.emit_bounds[static_cast<std::size_t>(co)]);
            const std::uint64_t flip =
                op.emit_flips[static_cast<std::size_t>(co)];
            for (std::int64_t y = 0; y < out_h; ++y) {
              std::uint64_t* bm = out_bits->row(plane, y);
              const float* row = count_data +
                                 (ni * positions + y * out_w) * out_channels +
                                 co;
              for (std::int64_t col = 0; col < out_w; ++col) {
                bm[col >> 6] |=
                    (std::uint64_t{row[col * out_channels] >= bound} ^ flip)
                    << (col & 63);
              }
            }
          }
        });
    return Tensor();
  }

  HOTSPOT_TRACE_SPAN("binary_conv.unpack");
  Tensor output({n, out_channels, out_h, out_w});
  Tensor alpha;
  if (conv.scaling() == bitops::InputScaling::kScalar) {
    HOTSPOT_CHECK(x != nullptr) << "scalar fusion needs float input";
    alpha = bitops::input_scales_scalar_affine(*x, spec, affine);
  }
  core::packed_conv_epilogue(counts, op.alpha_w,
                             alpha.numel() > 0 ? &alpha : nullptr,
                             out_channels, output);
  return output;
}

std::shared_ptr<GraphExecutor> install_executor(core::BrnnModel& model,
                                                FusionMode mode) {
  if (mode == FusionMode::kOff) {
    model.set_forward_override({});
    return nullptr;
  }
  auto executor = std::make_shared<GraphExecutor>(model, mode);
  model.set_forward_override(
      [executor](const Tensor& input) { return executor->run(input); });
  return executor;
}

}  // namespace hotspot::graph
