// Optimization passes over the graph IR (DESIGN.md §14.3).
//
// Every pass mutates the graph in place and returns how many sites it
// changed, so re-running a pass on its own output returns 0 (idempotence is
// pinned by tests/graph/fusion_identity_test.cpp). Passes require the module
// payloads the builder installs; they snapshot BN parameters and weights at
// fold/plan time, so the executor re-plans when weights change and the
// caller must rebuild the graph if BN statistics change (install after
// checkpoint load).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace hotspot::graph {

struct PassResult {
  std::string name;
  int changed = 0;
};

// Folds every BN -> Binarize -> BinaryConv chain whose intermediate edges
// have no other consumer into one kFusedBnBinaryConv node: per-channel
// binarize thresholds on the raw input (threshold.h) plus the retained BN
// affine for the alpha_T scales. Chains with non-finite BN parameters are
// left unfused. Dead BN/Binarize nodes are removed and ids compacted.
// Returns the number of convs fused.
int fold_bn_binarize_conv(Graph& graph);

// Precomputes alpha_W = ||W||_1 / n per fused conv (Eq. 8) into the node.
// Returns the number of nodes folded (0 when every fused node already has
// its scales).
int constant_fold_scales(Graph& graph);

// For every fused kNone conv A whose sole consumer is another fused kNone
// conv B: turns B's float thresholds into integer count thresholds on A's
// popcount outputs and marks A emit_bits — the A->B edge then carries
// BitPlanes and no float tensor is ever materialized between them.
// Requires constant_fold_scales (needs A's alpha_W). Returns the number of
// edges converted.
int fold_integer_thresholds(Graph& graph);

// Packs every fused conv's filters for the active XNOR kernel's word
// padding, refreshes alpha_W and emit bounds when the weight version moved,
// and records (kernel, weight version) so the executor can detect
// staleness. Returns the number of nodes (re)planned.
int plan_pack_layouts(Graph& graph);

// fold_bn_binarize_conv, constant_fold_scales, fold_integer_thresholds, in
// order, with per-pass change counts. Layout planning is separate: the
// executor runs plan_pack_layouts() itself so packing always matches the
// kernel dispatched at execution time.
std::vector<PassResult> run_fusion_pipeline(Graph& graph);

}  // namespace hotspot::graph
