#include "layout/raster.h"

#include <algorithm>

#include "util/check.h"

namespace hotspot::layout {

tensor::Tensor rasterize_coverage(const Pattern& pattern, const Rect& window,
                                  std::int64_t grid) {
  HOTSPOT_CHECK_GT(grid, 0);
  HOTSPOT_CHECK(!window.empty()) << "window " << to_string(window);
  tensor::Tensor raster({grid, grid});
  const double px_w = static_cast<double>(window.width()) /
                      static_cast<double>(grid);
  const double px_h = static_cast<double>(window.height()) /
                      static_cast<double>(grid);
  const double px_area = px_w * px_h;
  for (const Rect& rect : pattern.rects()) {
    const Rect cut = intersect(rect, window);
    if (cut.empty()) {
      continue;
    }
    // Pixel index range the rect can touch.
    const auto px0 = static_cast<std::int64_t>(
        (static_cast<double>(cut.x0 - window.x0)) / px_w);
    const auto px1 = std::min<std::int64_t>(
        grid - 1, static_cast<std::int64_t>(
                      (static_cast<double>(cut.x1 - window.x0) - 1e-9) / px_w));
    const auto py0 = static_cast<std::int64_t>(
        (static_cast<double>(cut.y0 - window.y0)) / px_h);
    const auto py1 = std::min<std::int64_t>(
        grid - 1, static_cast<std::int64_t>(
                      (static_cast<double>(cut.y1 - window.y0) - 1e-9) / px_h));
    for (std::int64_t py = py0; py <= py1; ++py) {
      const double cell_y0 = static_cast<double>(window.y0) +
                             static_cast<double>(py) * px_h;
      const double cell_y1 = cell_y0 + px_h;
      const double oy = std::min(cell_y1, static_cast<double>(cut.y1)) -
                        std::max(cell_y0, static_cast<double>(cut.y0));
      if (oy <= 0.0) {
        continue;
      }
      for (std::int64_t px = px0; px <= px1; ++px) {
        const double cell_x0 = static_cast<double>(window.x0) +
                               static_cast<double>(px) * px_w;
        const double cell_x1 = cell_x0 + px_w;
        const double ox = std::min(cell_x1, static_cast<double>(cut.x1)) -
                          std::max(cell_x0, static_cast<double>(cut.x0));
        if (ox <= 0.0) {
          continue;
        }
        raster.at2(py, px) = std::min(
            1.0f, raster.at2(py, px) +
                      static_cast<float>(ox * oy / px_area));
      }
    }
  }
  return raster;
}

tensor::Tensor rasterize_binary(const Pattern& pattern, const Rect& window,
                                std::int64_t grid) {
  tensor::Tensor coverage = rasterize_coverage(pattern, window, grid);
  for (std::int64_t i = 0; i < coverage.numel(); ++i) {
    coverage[i] = coverage[i] >= 0.5f ? 1.0f : 0.0f;
  }
  return coverage;
}

tensor::Tensor downsample_binary(const tensor::Tensor& image,
                                 std::int64_t target) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(target, 0);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  HOTSPOT_CHECK_EQ(h % target, 0)
      << "height " << h << " not divisible by " << target;
  HOTSPOT_CHECK_EQ(w % target, 0)
      << "width " << w << " not divisible by " << target;
  const std::int64_t by = h / target;
  const std::int64_t bx = w / target;
  const auto block = static_cast<float>(by * bx);
  tensor::Tensor out({target, target});
  for (std::int64_t ty = 0; ty < target; ++ty) {
    for (std::int64_t tx = 0; tx < target; ++tx) {
      float total = 0.0f;
      for (std::int64_t y = 0; y < by; ++y) {
        for (std::int64_t x = 0; x < bx; ++x) {
          total += image.at2(ty * by + y, tx * bx + x);
        }
      }
      out.at2(ty, tx) = (total / block) >= 0.5f ? 1.0f : 0.0f;
    }
  }
  return out;
}

tensor::Tensor flip_horizontal(const tensor::Tensor& image) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  tensor::Tensor out({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      out.at2(y, x) = image.at2(y, w - 1 - x);
    }
  }
  return out;
}

tensor::Tensor flip_vertical(const tensor::Tensor& image) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  tensor::Tensor out({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      out.at2(y, x) = image.at2(h - 1 - y, x);
    }
  }
  return out;
}

}  // namespace hotspot::layout
