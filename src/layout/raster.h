// Rasterization of Manhattan patterns to pixel grids, plus the image-level
// preprocessing of Sec. 3.4.1 (down-sampling and flips).
#pragma once

#include "layout/geometry.h"
#include "tensor/tensor.h"

namespace hotspot::layout {

// Rasterizes `pattern` over `window` onto a grid x grid raster. Each pixel
// holds the covered area fraction in [0,1] (exact, by rect/pixel
// intersection), which the lithography model consumes directly.
tensor::Tensor rasterize_coverage(const Pattern& pattern, const Rect& window,
                                  std::int64_t grid);

// Coverage raster thresholded at 0.5 into a binary {0,1} image.
tensor::Tensor rasterize_binary(const Pattern& pattern, const Rect& window,
                                std::int64_t grid);

// Box down-sampling of a [H,W] image to [target,target]; H and W must be
// multiples of target. Averages then thresholds at 0.5, keeping the result
// binary (the paper feeds down-sampled binary images directly).
tensor::Tensor downsample_binary(const tensor::Tensor& image,
                                 std::int64_t target);

// Horizontal / vertical mirror of a [H,W] image (training augmentation).
tensor::Tensor flip_horizontal(const tensor::Tensor& image);
tensor::Tensor flip_vertical(const tensor::Tensor& image);

}  // namespace hotspot::layout
