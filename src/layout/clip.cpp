#include "layout/clip.h"

#include "util/check.h"

namespace hotspot::layout {

std::vector<Clip> extract_clips(const Pattern& full, std::int64_t size_nm,
                                std::int64_t step_nm) {
  HOTSPOT_CHECK_GT(size_nm, 0);
  HOTSPOT_CHECK_GT(step_nm, 0);
  // A step beyond the window edge would silently skip stripes of geometry
  // between consecutive windows — a scan that "passes" without ever seeing
  // part of the chip. Reject the combination outright.
  HOTSPOT_CHECK_LE(step_nm, size_nm)
      << "step_nm > size_nm leaves uncovered stripes between windows";
  std::vector<Clip> clips;
  if (full.empty()) {
    return clips;
  }
  const Rect box = full.bounding_box();
  for (std::int64_t y = box.y0; y < box.y1; y += step_nm) {
    for (std::int64_t x = box.x0; x < box.x1; x += step_nm) {
      const Rect window{x, y, x + size_nm, y + size_nm};
      Clip clip{full.clipped_to(window), size_nm};
      clips.push_back(std::move(clip));
    }
  }
  return clips;
}

}  // namespace hotspot::layout
