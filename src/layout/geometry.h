// Manhattan layout geometry in integer nanometres.
//
// Layout clips in the ICCAD-2012 benchmark are rectilinear metal patterns;
// axis-aligned rectangles are sufficient to represent them (rectilinear
// polygons are unions of rects). Coordinates are int64 nanometres so no
// floating-point geometry is needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hotspot::layout {

// Half-open axis-aligned rectangle [x0,x1) x [y0,y1).
struct Rect {
  std::int64_t x0 = 0;
  std::int64_t y0 = 0;
  std::int64_t x1 = 0;
  std::int64_t y1 = 0;

  std::int64_t width() const { return x1 - x0; }
  std::int64_t height() const { return y1 - y0; }
  std::int64_t area() const { return width() * height(); }
  bool empty() const { return x1 <= x0 || y1 <= y0; }

  bool contains(std::int64_t x, std::int64_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  bool operator==(const Rect& other) const = default;
};

// Intersection (possibly empty).
Rect intersect(const Rect& a, const Rect& b);

// True when the rects share interior area.
bool overlaps(const Rect& a, const Rect& b);

// True when the rects overlap or abut (share an edge or corner).
bool touches(const Rect& a, const Rect& b);

// Smallest rect containing both.
Rect bounding_box(const Rect& a, const Rect& b);

std::string to_string(const Rect& rect);

// A single-layer pattern: a bag of rects. Overlapping rects are allowed and
// mean union.
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<Rect> rects);

  void add(const Rect& rect);

  const std::vector<Rect>& rects() const { return rects_; }
  bool empty() const { return rects_.empty(); }
  std::size_t size() const { return rects_.size(); }

  // Bounding box of all rects; empty Rect when the pattern is empty.
  Rect bounding_box() const;

  // True when the point is covered by any rect.
  bool covers(std::int64_t x, std::int64_t y) const;

  // Translates every rect by (dx, dy).
  void translate(std::int64_t dx, std::int64_t dy);

  // Keeps only the parts inside `window`, translated so the window's origin
  // becomes (0,0).
  Pattern clipped_to(const Rect& window) const;

  // Number of connected groups of touching rects (the distinct drawn
  // shapes); used by the lithography oracle to detect bridges.
  int connected_component_count() const;

 private:
  std::vector<Rect> rects_;
};

}  // namespace hotspot::layout
