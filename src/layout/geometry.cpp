#include "layout/geometry.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace hotspot::layout {

Rect intersect(const Rect& a, const Rect& b) {
  Rect result{std::max(a.x0, b.x0), std::max(a.y0, b.y0),
              std::min(a.x1, b.x1), std::min(a.y1, b.y1)};
  if (result.empty()) {
    return Rect{};
  }
  return result;
}

bool overlaps(const Rect& a, const Rect& b) {
  return a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1;
}

bool touches(const Rect& a, const Rect& b) {
  return a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1;
}

Rect bounding_box(const Rect& a, const Rect& b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  return Rect{std::min(a.x0, b.x0), std::min(a.y0, b.y0),
              std::max(a.x1, b.x1), std::max(a.y1, b.y1)};
}

std::string to_string(const Rect& rect) {
  std::ostringstream out;
  out << "Rect(" << rect.x0 << ", " << rect.y0 << ", " << rect.x1 << ", "
      << rect.y1 << ")";
  return out.str();
}

Pattern::Pattern(std::vector<Rect> rects) : rects_(std::move(rects)) {
  for (const auto& rect : rects_) {
    HOTSPOT_CHECK(!rect.empty()) << "empty rect in pattern: " << to_string(rect);
  }
}

void Pattern::add(const Rect& rect) {
  HOTSPOT_CHECK(!rect.empty()) << "cannot add empty rect " << to_string(rect);
  rects_.push_back(rect);
}

Rect Pattern::bounding_box() const {
  Rect box{};
  for (const auto& rect : rects_) {
    box = layout::bounding_box(box, rect);
  }
  return box;
}

bool Pattern::covers(std::int64_t x, std::int64_t y) const {
  for (const auto& rect : rects_) {
    if (rect.contains(x, y)) {
      return true;
    }
  }
  return false;
}

void Pattern::translate(std::int64_t dx, std::int64_t dy) {
  for (auto& rect : rects_) {
    rect.x0 += dx;
    rect.x1 += dx;
    rect.y0 += dy;
    rect.y1 += dy;
  }
}

Pattern Pattern::clipped_to(const Rect& window) const {
  Pattern result;
  for (const auto& rect : rects_) {
    Rect cut = intersect(rect, window);
    if (!cut.empty()) {
      cut.x0 -= window.x0;
      cut.x1 -= window.x0;
      cut.y0 -= window.y0;
      cut.y1 -= window.y0;
      result.add(cut);
    }
  }
  return result;
}

int Pattern::connected_component_count() const {
  // Union-find over rects with touch adjacency; rect counts per clip are
  // small (tens), so the quadratic pass is fine.
  const std::size_t n = rects_.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  auto find = [&](std::size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (touches(rects_[i], rects_[j])) {
        parent[find(i)] = find(j);
      }
    }
  }
  int components = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) == i) {
      ++components;
    }
  }
  return components;
}

}  // namespace hotspot::layout
