// Layout clips: the square windows hotspot detectors classify.
#pragma once

#include <vector>

#include "layout/geometry.h"
#include "layout/raster.h"

namespace hotspot::layout {

// A square layout window together with the geometry inside it.
struct Clip {
  Pattern pattern;        // geometry, translated to the window's local frame
  std::int64_t size_nm;   // window edge length

  Rect window() const { return Rect{0, 0, size_nm, size_nm}; }

  // Area-coverage raster of this clip.
  tensor::Tensor coverage(std::int64_t grid) const {
    return rasterize_coverage(pattern, window(), grid);
  }
  // Binary raster of this clip.
  tensor::Tensor binary(std::int64_t grid) const {
    return rasterize_binary(pattern, window(), grid);
  }
};

// Slides a size_nm x size_nm window over `full` geometry with the given
// step, producing one clip per window position covering the layout bounding
// box. Requires step_nm <= size_nm: a larger step would leave uncovered
// stripes between windows, so the combination is rejected (HOTSPOT_CHECK).
// Eagerly materializes every window — O(windows x rects) memory; full-chip
// scans should use scan::ClipWindowStream instead.
std::vector<Clip> extract_clips(const Pattern& full, std::int64_t size_nm,
                                std::int64_t step_nm);

}  // namespace hotspot::layout
