#include "eval/detector.h"

// Interface-only translation unit: anchors the vtable.
namespace hotspot::eval {}
