#include "eval/evaluation.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hotspot::eval {
namespace {

// Publishes the row's Table-3 numbers and the ODST (Eq. 3) components as
// gauges, so a metrics snapshot taken after an evaluation carries the same
// quantities the printed table shows. t_ls-dependent ODST itself is left to
// consumers: odst = (flagged * t_ls) + (total_instances *
// eval_seconds_per_instance).
void publish_row_metrics(const EvaluationRow& row) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.gauge("eval.train_seconds").set(row.train_seconds);
  registry.gauge("eval.runtime_seconds").set(row.eval_seconds);
  registry.gauge("eval.accuracy").set(row.matrix.accuracy());
  registry.gauge("eval.false_alarm")
      .set(static_cast<double>(row.matrix.false_alarm()));
  registry.gauge("eval.odst.flagged")
      .set(static_cast<double>(row.matrix.false_positive +
                               row.matrix.true_positive));
  registry.gauge("eval.odst.total_instances")
      .set(static_cast<double>(row.matrix.total()));
  registry.gauge("eval.odst.eval_seconds_per_instance")
      .set(row.eval_seconds_per_instance());
}

}  // namespace

EvaluationRow evaluate_detector(Detector& detector,
                                const dataset::HotspotDataset& train,
                                const dataset::HotspotDataset& test,
                                util::Rng& rng) {
  EvaluationRow row;
  row.method = detector.name();
  row.threads = util::parallel_threads();

  util::Stopwatch train_timer;
  {
    HOTSPOT_TRACE_SPAN("eval.fit");
    detector.fit(train, rng);
  }
  row.train_seconds = train_timer.seconds();

  util::Stopwatch eval_timer;
  std::vector<int> predicted;
  {
    HOTSPOT_TRACE_SPAN("eval.predict");
    predicted = detector.predict(test);
  }
  row.eval_seconds = eval_timer.seconds();

  const std::vector<int> actual = test.batch_labels(test.all_indices());
  row.matrix = confusion(actual, predicted);
  publish_row_metrics(row);
  return row;
}

util::Table comparison_table(const std::vector<EvaluationRow>& rows,
                             double litho_seconds_per_instance) {
  util::Table table({"Method", "FA#", "Runtime (s)", "ODST (s)", "Accu (%)"});
  for (const auto& row : rows) {
    table.add_row({row.method,
                   util::format_count(row.matrix.false_alarm()),
                   util::format_double(row.eval_seconds, 2),
                   util::format_double(row.odst(litho_seconds_per_instance), 0),
                   util::format_double(row.matrix.accuracy() * 100.0, 1)});
  }
  return table;
}

}  // namespace hotspot::eval
