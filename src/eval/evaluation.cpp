#include "eval/evaluation.h"

#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hotspot::eval {

EvaluationRow evaluate_detector(Detector& detector,
                                const dataset::HotspotDataset& train,
                                const dataset::HotspotDataset& test,
                                util::Rng& rng) {
  EvaluationRow row;
  row.method = detector.name();
  row.threads = util::parallel_threads();

  util::Stopwatch train_timer;
  detector.fit(train, rng);
  row.train_seconds = train_timer.seconds();

  util::Stopwatch eval_timer;
  const std::vector<int> predicted = detector.predict(test);
  row.eval_seconds = eval_timer.seconds();

  const std::vector<int> actual = test.batch_labels(test.all_indices());
  row.matrix = confusion(actual, predicted);
  return row;
}

util::Table comparison_table(const std::vector<EvaluationRow>& rows,
                             double litho_seconds_per_instance) {
  util::Table table({"Method", "FA#", "Runtime (s)", "ODST (s)", "Accu (%)"});
  for (const auto& row : rows) {
    table.add_row({row.method,
                   util::format_count(row.matrix.false_alarm()),
                   util::format_double(row.eval_seconds, 2),
                   util::format_double(row.odst(litho_seconds_per_instance), 0),
                   util::format_double(row.matrix.accuracy() * 100.0, 1)});
  }
  return table;
}

}  // namespace hotspot::eval
