// Hotspot-detection metrics (paper Sec. 2.1, Table 1, Eq. 1-3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hotspot::eval {

// Confusion matrix with the paper's label convention: positive = hotspot.
struct ConfusionMatrix {
  std::int64_t true_positive = 0;
  std::int64_t true_negative = 0;
  std::int64_t false_positive = 0;
  std::int64_t false_negative = 0;

  void record(int actual_label, int predicted_label);

  std::int64_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }

  // Eq. 1: accuracy = TP / (TP + FN) — the hotspot detection rate (recall).
  double accuracy() const;

  // Eq. 2: false alarm = #FP.
  std::int64_t false_alarm() const { return false_positive; }

  // Eq. 3: ODST = (FP+TP) * t_ls + total * t_ev.
  double odst(double litho_seconds_per_instance,
              double eval_seconds_per_instance) const;

  std::string to_string() const;
};

// Builds a confusion matrix from parallel label vectors.
ConfusionMatrix confusion(const std::vector<int>& actual,
                          const std::vector<int>& predicted);

}  // namespace hotspot::eval
