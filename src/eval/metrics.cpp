#include "eval/metrics.h"

#include <sstream>

#include "util/check.h"

namespace hotspot::eval {

void ConfusionMatrix::record(int actual_label, int predicted_label) {
  HOTSPOT_CHECK(actual_label == 0 || actual_label == 1)
      << "actual " << actual_label;
  HOTSPOT_CHECK(predicted_label == 0 || predicted_label == 1)
      << "predicted " << predicted_label;
  if (actual_label == 1) {
    (predicted_label == 1 ? true_positive : false_negative) += 1;
  } else {
    (predicted_label == 1 ? false_positive : true_negative) += 1;
  }
}

double ConfusionMatrix::accuracy() const {
  const std::int64_t actual_hotspots = true_positive + false_negative;
  if (actual_hotspots == 0) {
    return 0.0;
  }
  return static_cast<double>(true_positive) /
         static_cast<double>(actual_hotspots);
}

double ConfusionMatrix::odst(double litho_seconds_per_instance,
                             double eval_seconds_per_instance) const {
  return static_cast<double>(false_positive + true_positive) *
             litho_seconds_per_instance +
         static_cast<double>(total()) * eval_seconds_per_instance;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "TP=" << true_positive << " FN=" << false_negative
      << " FP=" << false_positive << " TN=" << true_negative;
  return out.str();
}

ConfusionMatrix confusion(const std::vector<int>& actual,
                          const std::vector<int>& predicted) {
  HOTSPOT_CHECK_EQ(actual.size(), predicted.size());
  ConfusionMatrix matrix;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    matrix.record(actual[i], predicted[i]);
  }
  return matrix;
}

}  // namespace hotspot::eval
