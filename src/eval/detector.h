// Common interface for hotspot detectors so the Table-3 harness can train
// and compare the paper's method and all three baselines uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "util/rng.h"

namespace hotspot::eval {

class Detector {
 public:
  virtual ~Detector() = default;

  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  // Method name as it appears in the comparison table.
  virtual std::string name() const = 0;

  // Trains on the given split. All stochastic choices draw from `rng`.
  virtual void fit(const dataset::HotspotDataset& train, util::Rng& rng) = 0;

  // Predicted labels (1 = hotspot), one per sample, in dataset order.
  virtual std::vector<int> predict(const dataset::HotspotDataset& data) = 0;
};

using DetectorPtr = std::unique_ptr<Detector>;

}  // namespace hotspot::eval
