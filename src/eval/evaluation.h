// Train/evaluate harness producing rows in the paper's Table-3 format:
// FA# | Runtime (s) | ODST (s) | Accu (%).
#pragma once

#include "eval/detector.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace hotspot::eval {

struct EvaluationRow {
  std::string method;
  ConfusionMatrix matrix;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;  // total prediction wall time ("Runtime")
  int threads = 1;            // pool width the timings were measured at

  double eval_seconds_per_instance() const {
    return matrix.total() == 0
               ? 0.0
               : eval_seconds / static_cast<double>(matrix.total());
  }

  // Eq. 3 with the measured per-instance evaluation time.
  double odst(double litho_seconds_per_instance) const {
    return matrix.odst(litho_seconds_per_instance,
                       eval_seconds_per_instance());
  }
};

// Fits the detector on `train`, times prediction over `test`, and fills the
// row.
EvaluationRow evaluate_detector(Detector& detector,
                                const dataset::HotspotDataset& train,
                                const dataset::HotspotDataset& test,
                                util::Rng& rng);

// Renders rows as the paper's Table 3 (t_ls defaults to the paper's 10 s).
util::Table comparison_table(const std::vector<EvaluationRow>& rows,
                             double litho_seconds_per_instance = 10.0);

}  // namespace hotspot::eval
