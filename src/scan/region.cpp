#include "scan/region.h"

#include "util/check.h"

namespace hotspot::scan {

std::vector<HotspotRegion> merge_flagged_windows(
    const std::vector<int>& labels, std::int64_t cols, std::int64_t rows,
    std::int64_t origin_x, std::int64_t origin_y, std::int64_t size_nm,
    std::int64_t step_nm) {
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), cols * rows)
      << "labels must cover the whole window grid";
  std::vector<HotspotRegion> regions;
  if (labels.empty()) {
    return regions;
  }
  std::vector<char> visited(labels.size(), 0);
  std::vector<std::int64_t> frontier;
  for (std::int64_t seed = 0; seed < static_cast<std::int64_t>(labels.size());
       ++seed) {
    if (labels[static_cast<std::size_t>(seed)] == 0 ||
        visited[static_cast<std::size_t>(seed)] != 0) {
      continue;
    }
    // Flood fill from the seed over flagged 8-neighbours.
    HotspotRegion region;
    frontier.clear();
    frontier.push_back(seed);
    visited[static_cast<std::size_t>(seed)] = 1;
    while (!frontier.empty()) {
      const std::int64_t index = frontier.back();
      frontier.pop_back();
      const std::int64_t ix = index % cols;
      const std::int64_t iy = index / cols;
      const std::int64_t x = origin_x + ix * step_nm;
      const std::int64_t y = origin_y + iy * step_nm;
      const layout::Rect window{x, y, x + size_nm, y + size_nm};
      region.bounds = region.window_count == 0
                          ? window
                          : layout::bounding_box(region.bounds, window);
      ++region.window_count;
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          const std::int64_t nx = ix + dx;
          const std::int64_t ny = iy + dy;
          if (nx < 0 || nx >= cols || ny < 0 || ny >= rows) {
            continue;
          }
          const std::int64_t neighbor = ny * cols + nx;
          if (labels[static_cast<std::size_t>(neighbor)] != 0 &&
              visited[static_cast<std::size_t>(neighbor)] == 0) {
            visited[static_cast<std::size_t>(neighbor)] = 1;
            frontier.push_back(neighbor);
          }
        }
      }
    }
    regions.push_back(region);
  }
  return regions;
}

}  // namespace hotspot::scan
