// Lazy clip-window iteration for full-chip scans (DESIGN.md §11).
//
// `layout::extract_clips` materializes every window's clipped geometry up
// front — O(windows × rects) memory on a real chip. ClipWindowStream walks
// the same window grid (identical positions, identical scan order) but
// materializes one window's geometry on demand, so a scan holds O(batch)
// windows alive instead of the whole chip.
//
// A bucket index over the chip's rects (cell edge = window edge) makes each
// materialization touch only the rects that can intersect the window,
// instead of every rect on the chip. Candidates are visited in insertion
// order, so the produced Clip is bit-identical — same rects, same order —
// to Pattern::clipped_to over the full rect list.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/clip.h"
#include "layout/geometry.h"

namespace hotspot::scan {

// One window position in the scan grid.
struct WindowRef {
  std::int64_t index = 0;  // scan order: iy * cols + ix
  std::int64_t ix = 0;     // column in the window grid
  std::int64_t iy = 0;     // row in the window grid
  layout::Rect window;     // absolute chip coordinates
};

class ClipWindowStream {
 public:
  // Walks size_nm x size_nm windows over `full`'s bounding box with the
  // given step. Requires step_nm <= size_nm (a larger step would leave
  // uncovered stripes, the same contract as layout::extract_clips). The
  // pattern must outlive the stream.
  ClipWindowStream(const layout::Pattern& full, std::int64_t size_nm,
                   std::int64_t step_nm);

  std::int64_t cols() const { return cols_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t window_count() const { return cols_ * rows_; }
  // Bounding-box origin the window grid is anchored at.
  std::int64_t origin_x() const { return origin_x_; }
  std::int64_t origin_y() const { return origin_y_; }
  std::int64_t size_nm() const { return size_nm_; }
  std::int64_t step_nm() const { return step_nm_; }

  // Advances to the next window in scan order (row-major, x fastest).
  // Returns false when the grid is exhausted.
  bool next(WindowRef& out);

  // Restarts the scan from the first window.
  void reset() { cursor_ = 0; }

  // Positions the cursor so the next next() call yields window `index`
  // (clamped to [0, window_count()]). Journal resume uses this to skip the
  // windows a previous run already scored.
  void seek(std::int64_t index) {
    cursor_ = index < 0 ? 0
                        : (index > window_count() ? window_count() : index);
  }

  // Window geometry for an arbitrary grid index (0 <= index < count).
  WindowRef window_at(std::int64_t index) const;

  // Clipped geometry of one window, translated to the window's local frame.
  // Bit-identical to full.clipped_to(ref.window) wrapped in a Clip.
  layout::Clip materialize(const WindowRef& ref) const;

 private:
  const layout::Pattern* full_;
  std::int64_t size_nm_;
  std::int64_t step_nm_;
  std::int64_t origin_x_ = 0;
  std::int64_t origin_y_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t rows_ = 0;
  std::int64_t cursor_ = 0;

  // Bucket index: rect indices per cell, cell edge = size_nm, anchored at
  // the bounding-box origin.
  std::int64_t cell_cols_ = 0;
  std::int64_t cell_rows_ = 0;
  std::vector<std::vector<std::int64_t>> cells_;
};

}  // namespace hotspot::scan
