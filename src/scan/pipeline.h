// Streaming full-chip scan pipeline (DESIGN.md §11, §13).
//
// Replaces the eager extract-everything-then-predict scan with a bounded-
// memory pipeline:
//
//   ClipWindowStream -> rasterize -> dedup -> batch -> classifier
//        (lazy)         (producer)   (cache)  (double-buffered)
//
// The producer walks the window grid in scan order, rasterizes each window
// and folds duplicate rasters through RasterDedupCache, so each *distinct*
// raster occupies exactly one batch slot and pays inference exactly once.
// In pipelined mode the producer runs on a helper thread and assembles
// batch N+1 while the classifier — which internally fans out on
// util::parallel_for's pool — consumes batch N on the calling thread, so
// rasterization hides behind inference. Rasterization itself stays serial
// on the producer: the pool serves one client at a time, and the classifier
// is that client.
//
// Batch composition is a pure function of scan order and the dedup state —
// never of timing or thread count — and the detector's per-window outputs
// are independent of batch composition, so scan results are bit-identical
// across pipelined/sequential modes and any HOTSPOT_NUM_THREADS setting.
//
// Fault tolerance (DESIGN.md §13): each window/batch gets a cooperative
// deadline and a bounded retry budget; windows that fail past it are
// quarantined (label 0, listed in ScanResult::quarantined_windows, counted
// in stats and on scan.quarantined) instead of hanging or killing the scan.
// With a journal_path set, every completed batch is appended to a
// crash-safe scan journal so `resume = true` continues a killed scan from
// its last fsync'ed batch — bit-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "layout/geometry.h"
#include "scan/region.h"
#include "scan/window_stream.h"
#include "tensor/tensor.h"

namespace hotspot::scan {

// Thrown when the kScanAbort fault point fires mid-scan: the chaos
// harness's stand-in for a hard kill at a batch boundary. The journal (if
// any) keeps every batch appended before the throw.
struct ScanAborted : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ScanConfig {
  std::int64_t window_nm = 0;  // window edge length (required, > 0)
  std::int64_t step_nm = 0;    // scan stride; 0 = window_nm (non-overlapping)
  std::int64_t grid = 32;      // raster resolution fed to the classifier
  int batch_size = 64;         // distinct rasters per inference batch
  bool dedup = true;           // raster dedup cache on/off
  std::size_t dedup_max_entries = 0;  // LRU entry cap; 0 = unlimited
  std::size_t dedup_max_bytes = 0;    // LRU payload-byte cap; 0 = unlimited
  bool pipelined = true;       // overlap rasterization with inference

  // Fault tolerance (DESIGN.md §13).
  int window_deadline_ms = 0;  // per-window attempt budget; 0 = no deadline
  int max_retries = 2;         // retry attempts after the first failure
  int retry_backoff_ms = 1;    // backoff before retry N is this << (N-1)
  std::string journal_path;    // append completed batches here; "" = off
  bool resume = false;         // recover journal_path state (requires path)
  int snapshot_every_batches = 16;  // snapshot cadence; 0 = completion only
};

struct ScanStats {
  std::int64_t windows = 0;         // window positions scanned this run
  std::int64_t unique_windows = 0;  // rasters that paid inference
  std::int64_t dedup_hits = 0;      // windows served from the cache
  std::int64_t batches = 0;         // inference batches issued
  std::int64_t retries = 0;         // failed attempts that were retried
  std::int64_t quarantined = 0;     // windows abandoned past the retry budget
  std::int64_t resume_skipped = 0;  // windows recovered from the journal
  double raster_seconds = 0.0;      // producer time (rasterize + dedup)
  double infer_seconds = 0.0;       // classifier time
  double total_seconds = 0.0;       // wall time of the whole scan

  double dedup_hit_rate() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(dedup_hits) /
                              static_cast<double>(windows);
  }
};

struct ScanResult {
  // One verdict per window in scan order (iy * cols + ix); 1 = hotspot.
  // Quarantined windows carry 0 here and their indices below.
  std::vector<int> labels;
  // Flagged windows merged into connected regions (8-connectivity).
  std::vector<HotspotRegion> regions;
  // Scan-order indices of windows whose raster or classification failed
  // past the retry budget; their labels are a conservative 0.
  std::vector<std::int64_t> quarantined_windows;
  ScanStats stats;

  // Window grid the labels are indexed by.
  std::int64_t cols = 0;
  std::int64_t rows = 0;
  std::int64_t origin_x = 0;
  std::int64_t origin_y = 0;
  std::int64_t window_nm = 0;
  std::int64_t step_nm = 0;

  std::int64_t flagged_count() const {
    std::int64_t count = 0;
    for (const int label : labels) {
      count += label != 0 ? 1 : 0;
    }
    return count;
  }

  // Eq. 3 over the whole scan: flagged windows pay litho, every window pays
  // detector evaluation.
  double odst(double litho_seconds_per_window,
              double eval_seconds_per_window) const {
    return static_cast<double>(flagged_count()) * litho_seconds_per_window +
           static_cast<double>(labels.size()) * eval_seconds_per_window;
  }
};

class ScanPipeline {
 public:
  // Classifies a [n, 1, grid, grid] {0,1} image batch into n labels
  // (1 = hotspot). Must be deterministic and per-sample independent —
  // BnnHotspotDetector::classifier() and BrnnModel::predict qualify.
  using BatchClassifier = std::function<std::vector<int>(
      const tensor::Tensor&)>;

  ScanPipeline(const ScanConfig& config, BatchClassifier classifier);

  const ScanConfig& config() const { return config_; }

  // Sweeps the window grid over `chip` and returns per-window verdicts,
  // merged hotspot regions, and scan statistics. Also bumps the
  // scan.windows / scan.dedup.{hits,misses} / scan.batches /
  // scan.retries / scan.quarantined / scan.resume.skipped counters in
  // obs::MetricsRegistry::global().
  //
  // Throws ScanAborted when the kScanAbort fault point fires and
  // std::runtime_error when the journal cannot be opened or appended to
  // (resume mismatch, disk failure). Per-window faults never throw — they
  // retry, then quarantine.
  ScanResult scan(const layout::Pattern& chip);

 private:
  ScanConfig config_;
  BatchClassifier classifier_;
};

}  // namespace hotspot::scan
