#include "scan/journal.h"

#include <unistd.h>

#include <cstring>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"

namespace hotspot::scan {
namespace {

constexpr std::uint32_t kJournalMagic = 0x4C4A5348;   // "HSJL"
constexpr std::uint32_t kSnapshotMagic = 0x534A5348;  // "HSJS"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint8_t kRecordBatch = 1;

constexpr util::AtomicFileWriter::FaultPoints kSnapshotFaults{
    util::FaultPoint::kJournalWrite, util::FaultPoint::kJournalFlush,
    util::FaultPoint::kJournalRename};

std::int64_t packed_raster_bytes(std::int64_t grid) {
  return (grid * grid + 7) / 8;
}

// --- byte-buffer encoding helpers --------------------------------------

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void append_value(std::vector<std::uint8_t>& out, T value) {
  append_bytes(out, &value, sizeof(value));
}

void append_packed_raster(std::vector<std::uint8_t>& out,
                          const RasterKey& pixels, std::int64_t grid) {
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(pixels.size()), grid * grid)
      << "raster size does not match the journal's grid";
  std::vector<std::uint8_t> packed(
      static_cast<std::size_t>(packed_raster_bytes(grid)), 0);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    if (pixels[i] != 0) {
      packed[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  append_bytes(out, packed.data(), packed.size());
}

void append_meta(std::vector<std::uint8_t>& out, const JournalMeta& meta) {
  append_value(out, meta.chip_fingerprint);
  append_value(out, meta.window_nm);
  append_value(out, meta.step_nm);
  append_value(out, meta.grid);
  append_value(out, meta.cols);
  append_value(out, meta.rows);
  append_value(out, meta.origin_x);
  append_value(out, meta.origin_y);
  append_value(out, meta.batch_size);
  append_value(out, meta.dedup);
  append_value(out, meta.dedup_max_entries);
  append_value(out, meta.dedup_max_bytes);
}

// --- bounds-checked sequential decoding --------------------------------

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  bool read(void* out, std::size_t size) {
    if (size > remaining()) {
      return false;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool read_value(T& out) {
    return read(&out, sizeof(out));
  }

  bool read_raster(RasterKey& out, std::int64_t grid) {
    const auto packed_size =
        static_cast<std::size_t>(packed_raster_bytes(grid));
    if (packed_size > remaining()) {
      return false;
    }
    out.assign(static_cast<std::size_t>(grid * grid), 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if ((data_[pos_ + i / 8] >> (i % 8)) & 1u) {
        out[i] = 1;
      }
    }
    pos_ += packed_size;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool read_meta(ByteReader& reader, JournalMeta& meta) {
  return reader.read_value(meta.chip_fingerprint) &&
         reader.read_value(meta.window_nm) &&
         reader.read_value(meta.step_nm) && reader.read_value(meta.grid) &&
         reader.read_value(meta.cols) && reader.read_value(meta.rows) &&
         reader.read_value(meta.origin_x) &&
         reader.read_value(meta.origin_y) &&
         reader.read_value(meta.batch_size) &&
         reader.read_value(meta.dedup) &&
         reader.read_value(meta.dedup_max_entries) &&
         reader.read_value(meta.dedup_max_bytes);
}

std::vector<std::uint8_t> encode_header(std::uint32_t magic,
                                        const JournalMeta& meta) {
  std::vector<std::uint8_t> header;
  append_value(header, magic);
  append_value(header, kFormatVersion);
  append_meta(header, meta);
  append_value(header, util::crc32_of(header.data(), header.size()));
  return header;
}

std::size_t header_size() {
  static const std::size_t size = encode_header(kJournalMagic, {}).size();
  return size;
}

// Reads `size` bytes from `file`, false on short read.
bool read_exact(std::FILE* file, void* out, std::size_t size) {
  return std::fread(out, 1, size, file) == size;
}

// Validates the header at the start of `file` against `expected`.
JournalResult check_header(std::FILE* file, const std::string& path,
                           std::uint32_t magic, const JournalMeta& expected) {
  std::vector<std::uint8_t> header(header_size());
  if (!read_exact(file, header.data(), header.size())) {
    return JournalResult::failure(JournalStatus::kTruncated,
                                  path + ": header is truncated");
  }
  const std::uint32_t stored_crc = util::crc32_of(
      header.data(), header.size() - sizeof(std::uint32_t));
  ByteReader reader(header.data(), header.size());
  std::uint32_t file_magic = 0;
  std::uint32_t version = 0;
  JournalMeta meta;
  std::uint32_t crc = 0;
  reader.read_value(file_magic);
  reader.read_value(version);
  read_meta(reader, meta);
  reader.read_value(crc);
  if (file_magic != magic) {
    return JournalResult::failure(JournalStatus::kBadFormat,
                                  path + ": not a scan journal (bad magic)");
  }
  if (version != kFormatVersion) {
    return JournalResult::failure(
        JournalStatus::kBadFormat,
        path + ": unsupported journal version " + std::to_string(version));
  }
  if (crc != stored_crc) {
    return JournalResult::failure(JournalStatus::kCorrupt,
                                  path + ": header CRC mismatch");
  }
  if (meta != expected) {
    return JournalResult::failure(
        JournalStatus::kMismatch,
        path + ": journal belongs to a different chip or scan config");
  }
  return JournalResult::success();
}

// Upper bound on a legitimate record payload, derived from the (already
// validated) scan identity — nothing a damaged length field claims can
// drive an allocation past it.
std::int64_t max_record_payload(const JournalMeta& meta) {
  const std::int64_t span_cap = meta.cols * meta.rows;
  const std::int64_t entries_cap =
      meta.batch_size > 0 ? meta.batch_size : span_cap;
  return 1 + 3 * 8 + 4 + span_cap * 8 +
         entries_cap * (4 + packed_raster_bytes(meta.grid));
}

// Parses one batch-record payload and applies it to `state` when it chains
// directly onto it; records fully covered by `state` (snapshot got there
// first) are skipped. Returns false when the record is structurally invalid
// or does not fit the state — the caller treats that as end-of-valid-data.
bool apply_record(const std::uint8_t* payload, std::size_t size,
                  const JournalMeta& meta, JournalState& state) {
  ByteReader reader(payload, size);
  std::uint8_t type = 0;
  std::int64_t win_begin = 0;
  std::int64_t win_end = 0;
  std::int64_t base_entry = 0;
  std::uint32_t new_entries = 0;
  if (!reader.read_value(type) || type != kRecordBatch ||
      !reader.read_value(win_begin) || !reader.read_value(win_end) ||
      !reader.read_value(base_entry) || !reader.read_value(new_entries)) {
    return false;
  }
  const std::int64_t window_count = meta.cols * meta.rows;
  if (win_begin < 0 || win_end < win_begin || win_end > window_count ||
      base_entry < 0 ||
      static_cast<std::int64_t>(new_entries) > win_end - win_begin) {
    return false;
  }
  const std::int64_t span = win_end - win_begin;
  const bool covered = win_end <= state.windows_done;
  if (!covered &&
      (win_begin != state.windows_done || base_entry != state.entry_count())) {
    return false;  // does not chain onto the recovered state
  }
  const std::int64_t entry_limit =
      base_entry + static_cast<std::int64_t>(new_entries);
  for (std::int64_t w = 0; w < span; ++w) {
    std::int64_t entry = 0;
    if (!reader.read_value(entry) || entry < -1 || entry >= entry_limit) {
      return false;
    }
    if (!covered) {
      state.window_entry.push_back(entry);
    }
  }
  for (std::uint32_t e = 0; e < new_entries; ++e) {
    std::int32_t verdict = 0;
    RasterKey pixels;
    if (!reader.read_value(verdict) || verdict < -1 ||
        !reader.read_raster(pixels, meta.grid)) {
      return false;
    }
    if (!covered) {
      state.entry_verdicts.push_back(verdict);
      state.entry_pixels.push_back(std::move(pixels));
    }
  }
  if (!reader.done()) {
    return false;  // trailing bytes inside the CRC frame
  }
  if (!covered) {
    state.windows_done = win_end;
    ++state.batches;
  }
  return true;
}

// Replays journal records from the current file position, stopping at the
// first torn or non-chaining record. Returns the byte offset just past the
// last valid record.
std::int64_t replay_records(std::FILE* file, const JournalMeta& meta,
                            JournalState& state) {
  std::int64_t valid_end = static_cast<std::int64_t>(header_size());
  const std::int64_t payload_cap = max_record_payload(meta);
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint32_t size = 0;
    if (!read_exact(file, &size, sizeof(size))) {
      break;
    }
    if (static_cast<std::int64_t>(size) > payload_cap) {
      break;
    }
    payload.resize(size);
    std::uint32_t stored_crc = 0;
    if (!read_exact(file, payload.data(), size) ||
        !read_exact(file, &stored_crc, sizeof(stored_crc))) {
      break;
    }
    if (util::crc32_of(payload.data(), payload.size()) != stored_crc) {
      break;
    }
    if (!apply_record(payload.data(), payload.size(), meta, state)) {
      break;
    }
    valid_end += static_cast<std::int64_t>(sizeof(size) + size +
                                           sizeof(stored_crc));
  }
  return valid_end;
}

// Loads `<journal>.snap` into `state`; any damage (missing, torn, CRC,
// foreign meta) just reports false — the journal alone can recover.
bool load_snapshot(const std::string& path, const JournalMeta& expected,
                   JournalState& state) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  bool ok = false;
  do {
    if (!check_header(file, path, kSnapshotMagic, expected).ok()) {
      break;
    }
    util::Crc32 crc;
    {
      std::vector<std::uint8_t> header(header_size());
      std::fseek(file, 0, SEEK_SET);
      if (!read_exact(file, header.data(), header.size())) {
        break;
      }
      crc.update(header.data(), header.size());
    }
    std::int64_t counters[3] = {0, 0, 0};  // windows_done, batches, entries
    if (!read_exact(file, counters, sizeof(counters))) {
      break;
    }
    crc.update(counters, sizeof(counters));
    const std::int64_t windows_done = counters[0];
    const std::int64_t batches = counters[1];
    const std::int64_t entries = counters[2];
    const std::int64_t window_count = expected.cols * expected.rows;
    if (windows_done < 0 || windows_done > window_count || batches < 0 ||
        entries < 0 || entries > windows_done) {
      break;
    }
    JournalState loaded;
    loaded.windows_done = windows_done;
    loaded.batches = batches;
    loaded.window_entry.resize(static_cast<std::size_t>(windows_done));
    if (!read_exact(file, loaded.window_entry.data(),
                    loaded.window_entry.size() * sizeof(std::int64_t))) {
      break;
    }
    crc.update(loaded.window_entry.data(),
               loaded.window_entry.size() * sizeof(std::int64_t));
    loaded.entry_verdicts.resize(static_cast<std::size_t>(entries));
    if (!read_exact(file, loaded.entry_verdicts.data(),
                    loaded.entry_verdicts.size() * sizeof(std::int32_t))) {
      break;
    }
    crc.update(loaded.entry_verdicts.data(),
               loaded.entry_verdicts.size() * sizeof(std::int32_t));
    const auto packed_size =
        static_cast<std::size_t>(packed_raster_bytes(expected.grid));
    std::vector<std::uint8_t> packed(packed_size);
    bool entries_ok = true;
    loaded.entry_pixels.reserve(static_cast<std::size_t>(entries));
    for (std::int64_t e = 0; e < entries; ++e) {
      if (!read_exact(file, packed.data(), packed.size())) {
        entries_ok = false;
        break;
      }
      crc.update(packed.data(), packed.size());
      ByteReader reader(packed.data(), packed.size());
      RasterKey pixels;
      reader.read_raster(pixels, expected.grid);
      loaded.entry_pixels.push_back(std::move(pixels));
    }
    if (!entries_ok) {
      break;
    }
    // Sanity: every window entry must reference a known entry id (or -1).
    bool refs_ok = true;
    for (const std::int64_t entry : loaded.window_entry) {
      if (entry < -1 || entry >= entries) {
        refs_ok = false;
        break;
      }
    }
    if (!refs_ok) {
      break;
    }
    std::uint32_t stored_crc = 0;
    if (!read_exact(file, &stored_crc, sizeof(stored_crc)) ||
        stored_crc != crc.value()) {
      break;
    }
    // Trailing bytes mean the file is not what the writer produced.
    std::uint8_t extra = 0;
    if (std::fread(&extra, 1, 1, file) != 0) {
      break;
    }
    state = std::move(loaded);
    ok = true;
  } while (false);
  std::fclose(file);
  return ok;
}

// Recovers state (snapshot + journal replay) and reports where the valid
// journal prefix ends. `valid_end` = -1 when the journal file is absent.
JournalResult recover_state(const std::string& path, const JournalMeta& meta,
                            JournalState& state, std::int64_t& valid_end) {
  state = JournalState{};
  valid_end = -1;
  const bool have_snapshot =
      load_snapshot(ScanJournal::snapshot_path(path), meta, state);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (have_snapshot) {
      return JournalResult::success();
    }
    return JournalResult::failure(
        JournalStatus::kMissing, path + ": no journal or snapshot to resume");
  }
  JournalResult header = check_header(file, path, kJournalMagic, meta);
  if (!header.ok()) {
    std::fclose(file);
    // A freshly-created journal that died before its header fsync'ed is
    // recoverable when the snapshot has the state.
    if (have_snapshot && (header.status == JournalStatus::kTruncated ||
                          header.status == JournalStatus::kCorrupt)) {
      return JournalResult::success();
    }
    return header;
  }
  valid_end = replay_records(file, meta, state);
  std::fclose(file);
  return JournalResult::success();
}

}  // namespace

const char* journal_status_name(JournalStatus status) {
  switch (status) {
    case JournalStatus::kOk:
      return "ok";
    case JournalStatus::kMissing:
      return "missing";
    case JournalStatus::kTruncated:
      return "truncated";
    case JournalStatus::kCorrupt:
      return "corrupt";
    case JournalStatus::kBadFormat:
      return "bad-format";
    case JournalStatus::kMismatch:
      return "mismatch";
    case JournalStatus::kWriteFailed:
      return "write-failed";
  }
  return "unknown";
}

bool JournalMeta::operator==(const JournalMeta& other) const {
  return chip_fingerprint == other.chip_fingerprint &&
         window_nm == other.window_nm && step_nm == other.step_nm &&
         grid == other.grid && cols == other.cols && rows == other.rows &&
         origin_x == other.origin_x && origin_y == other.origin_y &&
         batch_size == other.batch_size && dedup == other.dedup &&
         dedup_max_entries == other.dedup_max_entries &&
         dedup_max_bytes == other.dedup_max_bytes;
}

std::uint64_t chip_fingerprint(const layout::Pattern& chip) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&hash](std::int64_t value) {
    const auto bits = static_cast<std::uint64_t>(value);
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(static_cast<std::int64_t>(chip.rects().size()));
  for (const layout::Rect& rect : chip.rects()) {
    mix(rect.x0);
    mix(rect.y0);
    mix(rect.x1);
    mix(rect.y1);
  }
  return hash;
}

JournalResult ScanJournal::open(const std::string& path,
                                const JournalMeta& meta, bool resume,
                                JournalState* recovered) {
  HOTSPOT_CHECK(recovered != nullptr) << "open needs a recovery target";
  close();
  path_ = path;
  meta_ = meta;
  *recovered = JournalState{};

  std::int64_t valid_end = -1;
  if (resume) {
    const JournalResult result =
        recover_state(path, meta, *recovered, valid_end);
    if (!result.ok()) {
      return result;
    }
    if (valid_end >= 0) {
      // Drop any torn tail so new records append at a clean frame boundary.
      const std::int64_t size = util::file_size_of(path);
      if (size > valid_end && !util::corrupt_truncate(path, valid_end)) {
        return JournalResult::failure(
            JournalStatus::kWriteFailed,
            path + ": cannot truncate torn journal tail");
      }
      file_ = std::fopen(path.c_str(), "ab");
      if (file_ == nullptr) {
        return JournalResult::failure(JournalStatus::kWriteFailed,
                                      path + ": cannot open for appending");
      }
      return JournalResult::success();
    }
    // Snapshot-only recovery: fall through and start a fresh journal file
    // (records will chain onto the snapshot state).
  } else {
    std::remove(snapshot_path(path).c_str());
  }

  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path + ": cannot open for writing");
  }
  const std::vector<std::uint8_t> header = encode_header(kJournalMagic, meta);
  if (util::fault_should_fail(util::FaultPoint::kJournalWrite) ||
      std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path + ": journal header write failed");
  }
  if (util::fault_should_fail(util::FaultPoint::kJournalFlush) ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path + ": journal header flush failed");
  }
  return JournalResult::success();
}

JournalResult ScanJournal::append_batch(
    std::int64_t win_begin, std::int64_t win_end, std::int64_t base_entry,
    const std::vector<std::int64_t>& window_entries,
    const std::vector<std::int32_t>& verdicts,
    const std::vector<RasterKey>& pixels) {
  if (file_ == nullptr) {
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path_ + ": journal is not open");
  }
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(window_entries.size()),
                   win_end - win_begin)
      << "window span does not match the entry map";
  HOTSPOT_CHECK_EQ(verdicts.size(), pixels.size())
      << "each new entry needs a verdict and its raster";
  // Append cost (including fsync) and byte volume feed the durability
  // overhead story in metrics exports; only successful appends count, a
  // failed append closes the journal anyway.
  util::Stopwatch append_timer;

  std::vector<std::uint8_t> payload;
  append_value(payload, kRecordBatch);
  append_value(payload, win_begin);
  append_value(payload, win_end);
  append_value(payload, base_entry);
  append_value(payload, static_cast<std::uint32_t>(verdicts.size()));
  for (const std::int64_t entry : window_entries) {
    append_value(payload, entry);
  }
  for (std::size_t e = 0; e < verdicts.size(); ++e) {
    append_value(payload, verdicts[e]);
    append_packed_raster(payload, pixels[e], meta_.grid);
  }

  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 8);
  append_value(frame, static_cast<std::uint32_t>(payload.size()));
  append_bytes(frame, payload.data(), payload.size());
  append_value(frame, util::crc32_of(payload.data(), payload.size()));

  if (util::fault_should_fail(util::FaultPoint::kJournalWrite)) {
    // Simulate a crash mid-append: half the frame lands, a torn tail the
    // next recovery must drop.
    std::fwrite(frame.data(), 1, frame.size() / 2, file_);
    std::fflush(file_);
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path_ + ": injected journal write fault");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path_ + ": journal append failed");
  }
  if (util::fault_should_fail(util::FaultPoint::kJournalFlush)) {
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path_ + ": injected journal flush fault");
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    close();
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  path_ + ": journal flush/fsync failed");
  }
  static obs::Histogram& append_seconds =
      obs::MetricsRegistry::global().histogram("scan.journal.append_seconds",
                                               obs::default_latency_buckets());
  static obs::Counter& bytes_written = obs::MetricsRegistry::global().counter(
      "scan.journal.bytes_written");
  append_seconds.observe(append_timer.seconds());
  bytes_written.increment(frame.size());
  return JournalResult::success();
}

JournalResult ScanJournal::write_snapshot(const JournalState& state) const {
  HOTSPOT_CHECK(!path_.empty()) << "snapshot before open";
  util::AtomicFileWriter writer(snapshot_path(path_), kSnapshotFaults);
  const std::vector<std::uint8_t> header =
      encode_header(kSnapshotMagic, meta_);
  bool ok = writer.write(header.data(), header.size()) &&
            writer.write_i64(state.windows_done) &&
            writer.write_i64(state.batches) &&
            writer.write_i64(state.entry_count());
  if (ok) {
    ok = writer.write(state.window_entry.data(),
                      state.window_entry.size() * sizeof(std::int64_t)) &&
         writer.write(state.entry_verdicts.data(),
                      state.entry_verdicts.size() * sizeof(std::int32_t));
  }
  if (ok) {
    std::vector<std::uint8_t> packed;
    for (const RasterKey& pixels : state.entry_pixels) {
      packed.clear();
      append_packed_raster(packed, pixels, meta_.grid);
      if (!writer.write(packed.data(), packed.size())) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    const std::uint32_t crc = writer.crc();
    ok = writer.write(&crc, sizeof(crc)) && writer.finalize();
  }
  if (!ok) {
    return JournalResult::failure(JournalStatus::kWriteFailed,
                                  writer.error());
  }
  return JournalResult::success();
}

void ScanJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

JournalResult ScanJournal::recover(const std::string& path,
                                   const JournalMeta& meta,
                                   JournalState* state) {
  HOTSPOT_CHECK(state != nullptr) << "recover needs a target";
  std::int64_t valid_end = -1;
  return recover_state(path, meta, *state, valid_end);
}

}  // namespace hotspot::scan
