// Crash-resilient scan journal (DESIGN.md §13).
//
// A full-chip scan that dies at 97% must not restart from zero. The journal
// is an append-only record of *completed* window batches:
//
//   HSJL header (scan identity: chip fingerprint + scan config + grid)
//   record 1: [u32 size | payload | u32 crc32(payload)]
//   record 2: ...
//
// Each batch record carries the window span the batch consumed, the
// window -> entry mapping over that span, and — for every *new* distinct
// raster the batch classified — its verdict plus the bit-packed raster
// pixels. That is exactly the state a resumed scan needs to (a) skip the
// journaled windows, (b) rebuild the dedup cache (including LRU order, by
// replaying the access sequence), and (c) replay journaled verdicts into
// the final label grid — so a `--resume` run is bit-identical to an
// uninterrupted one.
//
// Appends are fsync'ed per record. A crash mid-append leaves a torn tail
// record whose CRC (or truncated frame) fails; recovery keeps the longest
// valid prefix and truncates the rest, which is precisely the
// last-completed-batch state. Every length field read from disk is
// validated against the scan geometry in the header before any allocation.
//
// Periodic snapshots (`<path>.snap`, written atomically via
// util::AtomicFileWriter — the same tmp+fsync+rename machinery as HSPT
// checkpoints) compact the full replay state so recovery cost stays O(tail)
// instead of O(whole journal). Recovery loads the snapshot if it is valid,
// then replays only the journal records past it; a damaged snapshot is
// ignored and the journal alone recovers the state.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "layout/geometry.h"
#include "scan/dedup_cache.h"

namespace hotspot::scan {

// Why a journal operation failed; mirrors nn::IoStatus but stays
// scan-local so the scan layer does not depend on nn.
enum class JournalStatus {
  kOk = 0,
  kMissing,      // journal file does not exist / cannot be opened
  kTruncated,    // header ends before the data it declares
  kCorrupt,      // header CRC mismatch or implausible field
  kBadFormat,    // not an HSJL journal / unsupported version
  kMismatch,     // journal belongs to a different chip or scan config
  kWriteFailed,  // append, flush, fsync, or snapshot publish failed
};

const char* journal_status_name(JournalStatus status);

struct JournalResult {
  JournalStatus status = JournalStatus::kOk;
  std::string message;

  bool ok() const { return status == JournalStatus::kOk; }
  explicit operator bool() const { return ok(); }

  static JournalResult success() { return {}; }
  static JournalResult failure(JournalStatus status, std::string message) {
    return {status, std::move(message)};
  }
};

// Identity of a scan: resuming under a different chip, window grid, or
// dedup configuration would replay state that means something else, so the
// header pins all of it and open() rejects a mismatch.
struct JournalMeta {
  std::uint64_t chip_fingerprint = 0;
  std::int64_t window_nm = 0;
  std::int64_t step_nm = 0;
  std::int64_t grid = 0;
  std::int64_t cols = 0;
  std::int64_t rows = 0;
  std::int64_t origin_x = 0;
  std::int64_t origin_y = 0;
  std::int32_t batch_size = 0;
  std::uint8_t dedup = 0;
  std::uint64_t dedup_max_entries = 0;
  std::uint64_t dedup_max_bytes = 0;

  bool operator==(const JournalMeta& other) const;
  bool operator!=(const JournalMeta& other) const { return !(*this == other); }
};

// FNV-1a over the chip's rect coordinates (order-sensitive, like the scan).
std::uint64_t chip_fingerprint(const layout::Pattern& chip);

// Everything a resumed scan needs: the first `windows_done` windows of scan
// order are fully scored, entry ids below entry_count() are classified.
struct JournalState {
  std::int64_t windows_done = 0;
  std::int64_t batches = 0;  // journal records applied (snapshot cadence)
  // Window index -> entry id over [0, windows_done); -1 = quarantined
  // window (rasterization failed past retry budget, no entry allocated).
  std::vector<std::int64_t> window_entry;
  // Verdict per entry id; -1 = quarantined entry (classification failed).
  std::vector<std::int32_t> entry_verdicts;
  // Unpacked {0,1} pixel bytes per entry id (grid*grid each) — the dedup
  // cache's rebuild material.
  std::vector<RasterKey> entry_pixels;

  std::int64_t entry_count() const {
    return static_cast<std::int64_t>(entry_verdicts.size());
  }
};

class ScanJournal {
 public:
  ScanJournal() = default;
  ~ScanJournal() { close(); }
  ScanJournal(const ScanJournal&) = delete;
  ScanJournal& operator=(const ScanJournal&) = delete;

  // Opens `path` for appending under identity `meta`.
  //
  //   resume = false: starts a fresh journal (truncates any existing file
  //     and removes a stale snapshot); `recovered` is reset to empty.
  //   resume = true: recovers prior state — snapshot first if valid, then
  //     journal records past it — into `recovered`, truncates any torn
  //     tail, and positions for appending. kMissing when there is nothing
  //     to resume from; kMismatch when the journal identifies a different
  //     scan.
  JournalResult open(const std::string& path, const JournalMeta& meta,
                     bool resume, JournalState* recovered);

  // Appends one completed-batch record and fsyncs it. `window_entries` maps
  // windows [win_begin, win_end) to entry ids (-1 = quarantined);
  // `verdicts`/`pixels` describe the `verdicts.size()` new entries the
  // batch introduced, ids [base_entry, base_entry + verdicts.size()).
  JournalResult append_batch(std::int64_t win_begin, std::int64_t win_end,
                             std::int64_t base_entry,
                             const std::vector<std::int64_t>& window_entries,
                             const std::vector<std::int32_t>& verdicts,
                             const std::vector<RasterKey>& pixels);

  // Atomically replaces the snapshot file with `state`.
  JournalResult write_snapshot(const JournalState& state) const;

  void close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  static std::string snapshot_path(const std::string& journal_path) {
    return journal_path + ".snap";
  }

  // Read-only recovery (no file mutation, no truncation): what a resume
  // would start from. kMissing when neither journal nor snapshot exists.
  static JournalResult recover(const std::string& path,
                               const JournalMeta& meta, JournalState* state);

 private:
  std::string path_;
  JournalMeta meta_;
  std::FILE* file_ = nullptr;
};

}  // namespace hotspot::scan
