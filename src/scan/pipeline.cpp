#include "scan/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scan/dedup_cache.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace hotspot::scan {
namespace {

struct BatchPlan {
  tensor::Tensor images;        // [count, 1, grid, grid]
  std::int64_t base_entry = 0;  // first entry id covered by this batch
  std::int64_t count = 0;
};

// Bounded handoff between the raster producer and the inference consumer.
// Capacity 2 keeps one finished batch staged while the next is assembled —
// the double buffer — without letting the producer run unboundedly ahead.
class BatchQueue {
 public:
  // Returns false when the consumer aborted and the batch was not taken.
  bool push(BatchPlan plan) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_push_.wait(lock, [&] { return aborted_ || queue_.size() < 2; });
    if (aborted_) {
      return false;
    }
    queue_.push_back(std::move(plan));
    cv_pop_.notify_one();
    return true;
  }

  std::optional<BatchPlan> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_pop_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return std::nullopt;
    }
    BatchPlan plan = std::move(queue_.front());
    queue_.pop_front();
    cv_push_.notify_one();
    return plan;
  }

  // Producer is done; pending batches still drain.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_pop_.notify_all();
  }

  // Consumer failed; unblock and stop the producer.
  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    closed_ = true;
    cv_push_.notify_all();
    cv_pop_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<BatchPlan> queue_;
  bool closed_ = false;
  bool aborted_ = false;
};

// Walks the window grid in scan order, rasterizing and deduplicating into
// fixed-size batches of distinct rasters. Single-threaded by design (see
// pipeline.h); next_batch() is the producer's only entry point.
class BatchProducer {
 public:
  BatchProducer(const ScanConfig& config, const layout::Pattern& chip,
                ScanStats& stats)
      : config_(config),
        stream_(chip, config.window_nm,
                config.step_nm > 0 ? config.step_nm : config.window_nm),
        cache_(config.dedup_max_entries),
        stats_(stats) {
    window_entry_.assign(static_cast<std::size_t>(stream_.window_count()), 0);
  }

  const ClipWindowStream& stream() const { return stream_; }
  const std::vector<std::int64_t>& window_entry() const {
    return window_entry_;
  }

  // Assembles the next batch of distinct rasters. Returns false when the
  // window grid is exhausted and no windows remain.
  bool next_batch(BatchPlan& out) {
    HOTSPOT_TRACE_SPAN("scan.batch.rasterize");
    util::Stopwatch timer;
    const std::int64_t grid = config_.grid;
    const std::int64_t pixels_per_window = grid * grid;
    std::vector<float> slots;
    const std::int64_t remaining = stream_.window_count() - windows_seen_;
    slots.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(config_.batch_size, remaining) *
        pixels_per_window));
    const std::int64_t base_entry = next_entry_;
    std::int64_t count = 0;
    std::int64_t windows_in_batch = 0;
    std::int64_t hits_in_batch = 0;
    WindowRef ref;
    while (count < config_.batch_size && stream_.next(ref)) {
      ++windows_in_batch;
      const layout::Clip clip = stream_.materialize(ref);
      const tensor::Tensor raster = clip.binary(grid);
      RasterKey pixels(static_cast<std::size_t>(pixels_per_window));
      const float* src = raster.data();
      for (std::int64_t i = 0; i < pixels_per_window; ++i) {
        pixels[static_cast<std::size_t>(i)] = src[i] != 0.0f ? 1 : 0;
      }
      std::uint64_t hash = 0;
      if (config_.dedup) {
        hash = hash_raster(pixels);
        const std::int64_t cached = cache_.find(hash, pixels);
        if (cached >= 0) {
          window_entry_[static_cast<std::size_t>(ref.index)] = cached;
          ++hits_in_batch;
          continue;
        }
      }
      window_entry_[static_cast<std::size_t>(ref.index)] = next_entry_;
      for (const std::uint8_t pixel : pixels) {
        slots.push_back(static_cast<float>(pixel));
      }
      if (config_.dedup) {
        cache_.insert(hash, std::move(pixels), next_entry_);
      }
      ++next_entry_;
      ++count;
    }
    const double raster_seconds = timer.seconds();
    stats_.raster_seconds += raster_seconds;
    stats_.windows += windows_in_batch;
    windows_seen_ += windows_in_batch;
    stats_.dedup_hits += hits_in_batch;
    static obs::Histogram& raster_histogram =
        obs::MetricsRegistry::global().histogram(
            "scan.raster_seconds", obs::default_latency_buckets());
    raster_histogram.observe(raster_seconds);
    static obs::Counter& windows_counter =
        obs::MetricsRegistry::global().counter("scan.windows");
    static obs::Counter& hits_counter =
        obs::MetricsRegistry::global().counter("scan.dedup.hits");
    static obs::Counter& misses_counter =
        obs::MetricsRegistry::global().counter("scan.dedup.misses");
    windows_counter.increment(static_cast<std::uint64_t>(windows_in_batch));
    hits_counter.increment(static_cast<std::uint64_t>(hits_in_batch));
    misses_counter.increment(static_cast<std::uint64_t>(count));
    if (count == 0) {
      return false;
    }
    out.images = tensor::Tensor({count, 1, grid, grid}, std::move(slots));
    out.base_entry = base_entry;
    out.count = count;
    return true;
  }

 private:
  ScanConfig config_;
  ClipWindowStream stream_;
  RasterDedupCache cache_;
  ScanStats& stats_;
  std::vector<std::int64_t> window_entry_;  // window index -> entry id
  std::int64_t next_entry_ = 0;
  std::int64_t windows_seen_ = 0;
};

}  // namespace

ScanPipeline::ScanPipeline(const ScanConfig& config,
                           BatchClassifier classifier)
    : config_(config), classifier_(std::move(classifier)) {
  HOTSPOT_CHECK_GT(config_.window_nm, 0);
  HOTSPOT_CHECK_GE(config_.step_nm, 0);
  HOTSPOT_CHECK_GT(config_.grid, 0);
  HOTSPOT_CHECK_GT(config_.batch_size, 0);
  HOTSPOT_CHECK(classifier_ != nullptr) << "scan needs a classifier";
}

ScanResult ScanPipeline::scan(const layout::Pattern& chip) {
  util::Stopwatch total_timer;
  ScanResult result;
  BatchProducer producer(config_, chip, result.stats);
  const ClipWindowStream& stream = producer.stream();
  result.cols = stream.cols();
  result.rows = stream.rows();
  result.origin_x = stream.origin_x();
  result.origin_y = stream.origin_y();
  result.window_nm = stream.size_nm();
  result.step_nm = stream.step_nm();
  const std::int64_t window_count = stream.window_count();

  // One verdict slot per *distinct* raster; windows map into it through
  // window_entry. Sized for the worst case (no duplicates).
  std::vector<int> entry_verdicts(static_cast<std::size_t>(window_count), 0);

  static obs::Counter& batches_counter =
      obs::MetricsRegistry::global().counter("scan.batches");
  auto classify_batch = [&](const BatchPlan& plan) {
    HOTSPOT_TRACE_SPAN("scan.batch.infer");
    util::Stopwatch timer;
    const std::vector<int> verdicts = classifier_(plan.images);
    HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(verdicts.size()), plan.count)
        << "classifier returned the wrong number of labels";
    for (std::int64_t i = 0; i < plan.count; ++i) {
      entry_verdicts[static_cast<std::size_t>(plan.base_entry + i)] =
          verdicts[static_cast<std::size_t>(i)];
    }
    const double batch_seconds = timer.seconds();
    result.stats.infer_seconds += batch_seconds;
    ++result.stats.batches;
    batches_counter.increment();
    static obs::Histogram& batch_histogram =
        obs::MetricsRegistry::global().histogram(
            "scan.batch_seconds", obs::default_latency_buckets());
    batch_histogram.observe(batch_seconds);
  };

  if (config_.pipelined && window_count > 0) {
    // Producer on a helper thread, classifier on the calling thread (the
    // thread pool's single client). The queue is the double buffer.
    BatchQueue queue;
    std::exception_ptr producer_error;
    std::thread producer_thread([&] {
      try {
        BatchPlan plan;
        while (producer.next_batch(plan)) {
          if (!queue.push(std::move(plan))) {
            return;  // consumer aborted
          }
        }
      } catch (...) {
        producer_error = std::current_exception();
      }
      queue.close();
    });
    try {
      while (std::optional<BatchPlan> plan = queue.pop()) {
        classify_batch(*plan);
      }
    } catch (...) {
      queue.abort();
      producer_thread.join();
      throw;
    }
    producer_thread.join();
    if (producer_error) {
      std::rethrow_exception(producer_error);
    }
  } else {
    BatchPlan plan;
    while (producer.next_batch(plan)) {
      classify_batch(plan);
    }
  }

  // Replay verdicts back onto the window grid.
  result.labels.resize(static_cast<std::size_t>(window_count));
  const std::vector<std::int64_t>& window_entry = producer.window_entry();
  for (std::int64_t w = 0; w < window_count; ++w) {
    result.labels[static_cast<std::size_t>(w)] =
        entry_verdicts[static_cast<std::size_t>(
            window_entry[static_cast<std::size_t>(w)])];
  }
  result.stats.unique_windows = result.stats.windows - result.stats.dedup_hits;
  result.regions = merge_flagged_windows(
      result.labels, result.cols, result.rows, result.origin_x,
      result.origin_y, result.window_nm, result.step_nm);
  result.stats.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace hotspot::scan
