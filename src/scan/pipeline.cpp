#include "scan/pipeline.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scan/dedup_cache.h"
#include "scan/journal.h"
#include "util/bounded_queue.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"

namespace hotspot::scan {
namespace {

void backoff_sleep(int base_ms, int retry_index) {
  if (base_ms <= 0) {
    return;
  }
  const int shift = std::min(retry_index, 20);  // cap exponential growth
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long long>(base_ms) << shift));
}

struct BatchPlan {
  tensor::Tensor images;        // [count, 1, grid, grid]; unset if count == 0
  std::int64_t base_entry = 0;  // first entry id covered by this batch
  std::int64_t count = 0;       // new distinct rasters in this batch
  std::int64_t win_begin = 0;   // window span this batch consumed
  std::int64_t win_end = 0;
  // window_entry slice over [win_begin, win_end); -1 = quarantined.
  std::vector<std::int64_t> entries;
  // Pixels of the `count` new entries, in entry order (journaling only).
  std::vector<RasterKey> pixels;
};

// Bounded handoff between the raster producer and the inference consumer.
// Capacity 2 keeps one finished batch staged while the next is assembled —
// the double buffer — without letting the producer run unboundedly ahead.
// The queue itself is the generic util::BoundedQueue the serve layer's
// admission scheduler also builds on (DESIGN.md §15); the scan pipeline is
// its weight-1, capacity-2 instantiation.
using BatchQueue = util::BoundedQueue<BatchPlan>;

// Walks the window grid in scan order, rasterizing and deduplicating into
// fixed-size batches of distinct rasters. Single-threaded by design (see
// pipeline.h); next_batch() is the producer's only entry point.
class BatchProducer {
 public:
  BatchProducer(const ScanConfig& config, const layout::Pattern& chip,
                ScanStats& stats)
      : config_(config),
        stream_(chip, config.window_nm,
                config.step_nm > 0 ? config.step_nm : config.window_nm),
        cache_(config.dedup_max_entries, config.dedup_max_bytes),
        keep_pixels_(!config.journal_path.empty()),
        stats_(stats) {
    window_entry_.assign(static_cast<std::size_t>(stream_.window_count()), 0);
  }

  const ClipWindowStream& stream() const { return stream_; }
  const std::vector<std::int64_t>& window_entry() const {
    return window_entry_;
  }

  // Adopts journal-recovered state: skips the recovered windows and rebuilds
  // the dedup cache by replaying the recovered access sequence, so LRU order
  // (and therefore every future hit/miss/eviction) matches the state the
  // interrupted run would have reached.
  void adopt(const JournalState& state) {
    HOTSPOT_CHECK_LE(state.windows_done, stream_.window_count())
        << "journal covers more windows than this scan has";
    stream_.seek(state.windows_done);
    windows_seen_ = state.windows_done;
    next_entry_ = state.entry_count();
    for (std::int64_t w = 0; w < state.windows_done; ++w) {
      const std::int64_t entry = state.window_entry[static_cast<std::size_t>(w)];
      window_entry_[static_cast<std::size_t>(w)] = entry;
      if (!config_.dedup || entry < 0) {
        continue;
      }
      const RasterKey& pixels =
          state.entry_pixels[static_cast<std::size_t>(entry)];
      const std::uint64_t hash = hash_raster(pixels);
      if (cache_.find(hash, pixels) < 0) {
        cache_.insert(hash, pixels, entry);
      }
    }
  }

  // Assembles the next batch. Returns false only when no windows remain; a
  // returned plan can have count == 0 (every window in its span was a dedup
  // hit or quarantined) — the journal still needs that span recorded.
  bool next_batch(BatchPlan& out) {
    HOTSPOT_TRACE_SPAN("scan.batch.rasterize");
    util::Stopwatch timer;
    const std::int64_t grid = config_.grid;
    const std::int64_t pixels_per_window = grid * grid;
    std::vector<float> slots;
    const std::int64_t remaining = stream_.window_count() - windows_seen_;
    slots.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(config_.batch_size, remaining) *
        pixels_per_window));
    const std::int64_t base_entry = next_entry_;
    const std::int64_t win_begin = windows_seen_;
    std::vector<RasterKey> batch_pixels;
    std::int64_t count = 0;
    std::int64_t windows_in_batch = 0;
    std::int64_t hits_in_batch = 0;
    WindowRef ref;
    while (count < config_.batch_size && stream_.next(ref)) {
      ++windows_in_batch;
      WindowOutcome outcome = process_window(ref, pixels_per_window);
      if (!outcome.ok) {
        window_entry_[static_cast<std::size_t>(ref.index)] = -1;
        continue;
      }
      window_entry_[static_cast<std::size_t>(ref.index)] = outcome.entry;
      if (!outcome.is_new) {
        ++hits_in_batch;
        continue;
      }
      for (const std::uint8_t pixel : outcome.pixels) {
        slots.push_back(static_cast<float>(pixel));
      }
      if (keep_pixels_) {
        batch_pixels.push_back(std::move(outcome.pixels));
      }
      ++next_entry_;
      ++count;
    }
    const double raster_seconds = timer.seconds();
    stats_.raster_seconds += raster_seconds;
    stats_.windows += windows_in_batch;
    windows_seen_ += windows_in_batch;
    stats_.dedup_hits += hits_in_batch;
    static obs::Histogram& raster_histogram =
        obs::MetricsRegistry::global().histogram(
            "scan.raster_seconds", obs::default_latency_buckets());
    raster_histogram.observe(raster_seconds);
    static obs::Counter& windows_counter =
        obs::MetricsRegistry::global().counter("scan.windows");
    static obs::Counter& hits_counter =
        obs::MetricsRegistry::global().counter("scan.dedup.hits");
    static obs::Counter& misses_counter =
        obs::MetricsRegistry::global().counter("scan.dedup.misses");
    windows_counter.increment(static_cast<std::uint64_t>(windows_in_batch));
    hits_counter.increment(static_cast<std::uint64_t>(hits_in_batch));
    misses_counter.increment(static_cast<std::uint64_t>(count));
    if (windows_in_batch == 0) {
      return false;
    }
    if (count > 0) {
      out.images = tensor::Tensor({count, 1, grid, grid}, std::move(slots));
    } else {
      out.images = tensor::Tensor();
    }
    out.base_entry = base_entry;
    out.count = count;
    out.win_begin = win_begin;
    out.win_end = windows_seen_;
    out.entries.assign(
        window_entry_.begin() + static_cast<std::ptrdiff_t>(win_begin),
        window_entry_.begin() + static_cast<std::ptrdiff_t>(windows_seen_));
    out.pixels = std::move(batch_pixels);
    return true;
  }

 private:
  struct WindowOutcome {
    bool ok = false;
    bool is_new = false;        // a new distinct raster (needs inference)
    std::int64_t entry = -1;    // entry id (existing on a dedup hit)
    RasterKey pixels;           // set when is_new
  };

  // One window, guarded: deadline per attempt, bounded retries with
  // exponential backoff, quarantine past the budget. The attempt body keeps
  // all cache mutation last (and RasterDedupCache::insert probes its fault
  // before mutating), so a failed attempt leaves no partial state behind
  // and the retry replays cleanly.
  WindowOutcome process_window(const WindowRef& ref,
                               std::int64_t pixels_per_window) {
    static obs::Counter& retries_counter =
        obs::MetricsRegistry::global().counter("scan.retries");
    const int max_attempts = config_.max_retries + 1;
    for (int attempt = 1;; ++attempt) {
      util::Stopwatch attempt_timer;
      try {
        util::fault_maybe_stall(util::FaultPoint::kScanRasterStall);
        if (util::fault_should_fail(util::FaultPoint::kScanRasterCompute)) {
          throw std::runtime_error("injected raster compute fault");
        }
        const layout::Clip clip = stream_.materialize(ref);
        const tensor::Tensor raster = clip.binary(config_.grid);
        RasterKey pixels(static_cast<std::size_t>(pixels_per_window));
        const float* src = raster.data();
        for (std::int64_t i = 0; i < pixels_per_window; ++i) {
          pixels[static_cast<std::size_t>(i)] = src[i] != 0.0f ? 1 : 0;
        }
        // Cooperative deadline: checked once the attempt's work is done (a
        // wedged computation cannot be preempted, but a stalled one is
        // caught here instead of poisoning the whole scan).
        if (config_.window_deadline_ms > 0 &&
            attempt_timer.seconds() * 1000.0 > config_.window_deadline_ms) {
          throw std::runtime_error("window exceeded deadline");
        }
        if (config_.dedup) {
          const std::uint64_t hash = hash_raster(pixels);
          const std::int64_t cached = cache_.find(hash, pixels);
          if (cached >= 0) {
            return WindowOutcome{true, false, cached, {}};
          }
          cache_.insert(hash, pixels, next_entry_);
        }
        return WindowOutcome{true, true, next_entry_, std::move(pixels)};
      } catch (...) {
        if (attempt >= max_attempts) {
          return WindowOutcome{};
        }
        ++stats_.retries;
        retries_counter.increment();
        backoff_sleep(config_.retry_backoff_ms, attempt - 1);
      }
    }
  }

  ScanConfig config_;
  ClipWindowStream stream_;
  RasterDedupCache cache_;
  bool keep_pixels_;
  ScanStats& stats_;
  std::vector<std::int64_t> window_entry_;  // window index -> entry id
  std::int64_t next_entry_ = 0;
  std::int64_t windows_seen_ = 0;
};

void throw_if_abort_armed(const char* where) {
  if (util::fault_should_fail(util::FaultPoint::kScanAbort)) {
    throw ScanAborted(std::string("injected scan abort ") + where);
  }
}

}  // namespace

ScanPipeline::ScanPipeline(const ScanConfig& config,
                           BatchClassifier classifier)
    : config_(config), classifier_(std::move(classifier)) {
  HOTSPOT_CHECK_GT(config_.window_nm, 0);
  HOTSPOT_CHECK_GE(config_.step_nm, 0);
  HOTSPOT_CHECK_GT(config_.grid, 0);
  HOTSPOT_CHECK_GT(config_.batch_size, 0);
  HOTSPOT_CHECK_GE(config_.max_retries, 0);
  HOTSPOT_CHECK_GE(config_.retry_backoff_ms, 0);
  HOTSPOT_CHECK_GE(config_.window_deadline_ms, 0);
  HOTSPOT_CHECK(classifier_ != nullptr) << "scan needs a classifier";
  if (config_.resume) {
    HOTSPOT_CHECK(!config_.journal_path.empty())
        << "resume needs a journal_path";
  }
}

ScanResult ScanPipeline::scan(const layout::Pattern& chip) {
  util::Stopwatch total_timer;
  ScanResult result;
  BatchProducer producer(config_, chip, result.stats);
  const ClipWindowStream& stream = producer.stream();
  result.cols = stream.cols();
  result.rows = stream.rows();
  result.origin_x = stream.origin_x();
  result.origin_y = stream.origin_y();
  result.window_nm = stream.size_nm();
  result.step_nm = stream.step_nm();
  const std::int64_t window_count = stream.window_count();

  // One verdict slot per *distinct* raster; windows map into it through
  // window_entry. Sized for the worst case (no duplicates). -1 marks an
  // entry whose classification was quarantined.
  std::vector<int> entry_verdicts(static_cast<std::size_t>(window_count), 0);

  // Journal setup + recovery. jstate mirrors everything appended so far —
  // it is both the snapshot payload and the resume baseline.
  const bool journaling = !config_.journal_path.empty();
  ScanJournal journal;
  JournalState jstate;
  if (journaling) {
    JournalMeta meta;
    meta.chip_fingerprint = chip_fingerprint(chip);
    meta.window_nm = stream.size_nm();
    meta.step_nm = stream.step_nm();
    meta.grid = config_.grid;
    meta.cols = stream.cols();
    meta.rows = stream.rows();
    meta.origin_x = stream.origin_x();
    meta.origin_y = stream.origin_y();
    meta.batch_size = config_.batch_size;
    meta.dedup = config_.dedup ? 1 : 0;
    meta.dedup_max_entries = config_.dedup_max_entries;
    meta.dedup_max_bytes = config_.dedup_max_bytes;
    const JournalResult opened = journal.open(
        config_.journal_path, meta, config_.resume, &jstate);
    if (!opened.ok()) {
      throw std::runtime_error("scan journal (" +
                               std::string(journal_status_name(
                                   opened.status)) +
                               "): " + opened.message);
    }
    if (config_.resume && jstate.windows_done > 0) {
      producer.adopt(jstate);
      for (std::int64_t e = 0; e < jstate.entry_count(); ++e) {
        entry_verdicts[static_cast<std::size_t>(e)] =
            jstate.entry_verdicts[static_cast<std::size_t>(e)];
      }
      result.stats.resume_skipped = jstate.windows_done;
      static obs::Counter& resume_counter =
          obs::MetricsRegistry::global().counter("scan.resume.skipped");
      resume_counter.increment(
          static_cast<std::uint64_t>(jstate.windows_done));
    }
  }

  static obs::Counter& batches_counter =
      obs::MetricsRegistry::global().counter("scan.batches");
  static obs::Counter& snapshot_failures_counter =
      obs::MetricsRegistry::global().counter(
          "scan.journal.snapshot_failures");
  std::int64_t consumer_retries = 0;
  std::int64_t records_this_run = 0;

  // Classifies one batch with deadline/retry/quarantine, then journals it.
  // Runs on the calling thread only.
  auto classify_batch = [&](BatchPlan& plan) {
    throw_if_abort_armed("before classify");
    std::vector<int> verdicts;
    if (plan.count > 0) {
      HOTSPOT_TRACE_SPAN("scan.batch.infer");
      const double deadline_ms =
          config_.window_deadline_ms > 0
              ? static_cast<double>(config_.window_deadline_ms) *
                    static_cast<double>(plan.count)
              : 0.0;
      const int max_attempts = config_.max_retries + 1;
      for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        util::Stopwatch timer;
        try {
          verdicts = classifier_(plan.images);
          HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(verdicts.size()),
                           plan.count)
              << "classifier returned the wrong number of labels";
          if (deadline_ms > 0.0 && timer.seconds() * 1000.0 > deadline_ms) {
            throw std::runtime_error("batch exceeded deadline");
          }
          const double batch_seconds = timer.seconds();
          result.stats.infer_seconds += batch_seconds;
          ++result.stats.batches;
          batches_counter.increment();
          static obs::Histogram& batch_histogram =
              obs::MetricsRegistry::global().histogram(
                  "scan.batch_seconds", obs::default_latency_buckets());
          batch_histogram.observe(batch_seconds);
          break;
        } catch (...) {
          verdicts.clear();
          if (attempt >= max_attempts) {
            break;
          }
          ++consumer_retries;
          static obs::Counter& retries_counter =
              obs::MetricsRegistry::global().counter("scan.retries");
          retries_counter.increment();
          backoff_sleep(config_.retry_backoff_ms, attempt - 1);
        }
      }
      if (verdicts.empty()) {
        // Classification failed past the budget: quarantine every entry in
        // the batch. Partial results for the rest of the scan survive.
        verdicts.assign(static_cast<std::size_t>(plan.count), -1);
      }
      for (std::int64_t i = 0; i < plan.count; ++i) {
        entry_verdicts[static_cast<std::size_t>(plan.base_entry + i)] =
            verdicts[static_cast<std::size_t>(i)];
      }
    }
    throw_if_abort_armed("before journal append");
    if (journaling) {
      std::vector<std::int32_t> verdicts32(verdicts.begin(), verdicts.end());
      const JournalResult appended = journal.append_batch(
          plan.win_begin, plan.win_end, plan.base_entry, plan.entries,
          verdicts32, plan.pixels);
      if (!appended.ok()) {
        throw std::runtime_error("scan journal (write-failed): " +
                                 appended.message);
      }
      jstate.window_entry.insert(jstate.window_entry.end(),
                                 plan.entries.begin(), plan.entries.end());
      jstate.entry_verdicts.insert(jstate.entry_verdicts.end(),
                                   verdicts32.begin(), verdicts32.end());
      for (RasterKey& pixels : plan.pixels) {
        jstate.entry_pixels.push_back(std::move(pixels));
      }
      jstate.windows_done = plan.win_end;
      ++jstate.batches;
      ++records_this_run;
      if (config_.snapshot_every_batches > 0 &&
          records_this_run % config_.snapshot_every_batches == 0) {
        // A failed snapshot is not data loss — the journal has every batch
        // and the previous snapshot (if any) is still intact under the
        // atomic publish — so it only costs recovery time. Count it.
        if (!journal.write_snapshot(jstate).ok()) {
          snapshot_failures_counter.increment();
        }
      }
    }
    throw_if_abort_armed("after journal append");
  };

  if (config_.pipelined && window_count > 0) {
    // Producer on a helper thread, classifier on the calling thread (the
    // thread pool's single client). The queue is the double buffer.
    BatchQueue queue(2);
    std::exception_ptr producer_error;
    std::thread producer_thread([&] {
      try {
        BatchPlan plan;
        while (producer.next_batch(plan)) {
          if (!queue.push(std::move(plan))) {
            return;  // consumer aborted
          }
        }
      } catch (...) {
        producer_error = std::current_exception();
      }
      queue.close();
    });
    try {
      while (std::optional<BatchPlan> plan = queue.pop()) {
        classify_batch(*plan);
      }
    } catch (...) {
      queue.abort();
      producer_thread.join();
      result.stats.retries += consumer_retries;
      throw;
    }
    producer_thread.join();
    if (producer_error) {
      std::rethrow_exception(producer_error);
    }
  } else {
    BatchPlan plan;
    while (producer.next_batch(plan)) {
      classify_batch(plan);
    }
  }
  result.stats.retries += consumer_retries;

  if (journaling) {
    // Completion snapshot: a --resume of a finished journal recovers
    // instantly instead of replaying every record.
    if (!journal.write_snapshot(jstate).ok()) {
      snapshot_failures_counter.increment();
    }
    journal.close();
  }

  // Replay verdicts back onto the window grid; quarantined windows (no
  // entry, or an entry whose classification failed) get a conservative 0
  // and are reported explicitly.
  result.labels.resize(static_cast<std::size_t>(window_count));
  const std::vector<std::int64_t>& window_entry = producer.window_entry();
  for (std::int64_t w = 0; w < window_count; ++w) {
    const std::int64_t entry = window_entry[static_cast<std::size_t>(w)];
    const int verdict =
        entry < 0 ? -1 : entry_verdicts[static_cast<std::size_t>(entry)];
    if (verdict < 0) {
      result.labels[static_cast<std::size_t>(w)] = 0;
      result.quarantined_windows.push_back(w);
    } else {
      result.labels[static_cast<std::size_t>(w)] = verdict;
    }
  }
  result.stats.quarantined =
      static_cast<std::int64_t>(result.quarantined_windows.size());
  if (result.stats.quarantined > 0) {
    static obs::Counter& quarantined_counter =
        obs::MetricsRegistry::global().counter("scan.quarantined");
    quarantined_counter.increment(
        static_cast<std::uint64_t>(result.stats.quarantined));
  }
  result.stats.unique_windows = result.stats.windows - result.stats.dedup_hits;
  result.regions = merge_flagged_windows(
      result.labels, result.cols, result.rows, result.origin_x,
      result.origin_y, result.window_nm, result.step_nm);
  result.stats.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace hotspot::scan
