// Merging flagged scan windows into hotspot regions (DESIGN.md §11).
//
// The scan verdict is per window, but the deliverable of a full-chip sweep
// is a worklist of *regions* to hand to the lithography simulator: adjacent
// flagged windows almost always flag the same underlying geometry, so they
// are merged (8-connectivity on the window grid — diagonal neighbours of an
// overlapping scan still share geometry) and each region carries its own
// ODST accounting (Eq. 3 applied to the windows inside it).
#pragma once

#include <cstdint>
#include <vector>

#include "layout/geometry.h"

namespace hotspot::scan {

struct HotspotRegion {
  layout::Rect bounds;             // union bounding box of merged windows
  std::int64_t window_count = 0;   // flagged windows merged into the region

  // Eq. 3 restricted to this region: the litho time the region costs plus
  // its share of detector evaluation time.
  double odst(double litho_seconds_per_window,
              double eval_seconds_per_window) const {
    return static_cast<double>(window_count) *
           (litho_seconds_per_window + eval_seconds_per_window);
  }
};

// Groups the flagged windows of a cols x rows scan grid into connected
// regions (8-connectivity). `labels` holds one verdict per window in scan
// order (iy * cols + ix); nonzero = flagged. Window (ix, iy) covers
// [origin + i*step, origin + i*step + size) on each axis. Regions are
// returned in scan order of their first window, windows inside a region in
// scan order, so the output is deterministic.
std::vector<HotspotRegion> merge_flagged_windows(
    const std::vector<int>& labels, std::int64_t cols, std::int64_t rows,
    std::int64_t origin_x, std::int64_t origin_y, std::int64_t size_nm,
    std::int64_t step_nm);

}  // namespace hotspot::scan
