#include "scan/dedup_cache.h"

namespace hotspot::scan {

std::uint64_t hash_raster(const RasterKey& pixels) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const std::uint8_t byte : pixels) {
    hash ^= byte;
    hash *= 1099511628211ULL;  // FNV prime
  }
  // Mix in the length so "all zeros, n pixels" and "all zeros, m pixels"
  // differ even though the byte stream hash would not.
  hash ^= static_cast<std::uint64_t>(pixels.size());
  hash *= 1099511628211ULL;
  return hash;
}

std::int64_t RasterDedupCache::find(std::uint64_t hash,
                                    const RasterKey& pixels) const {
  const auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) {
    return -1;
  }
  for (const Keyed& keyed : bucket->second) {
    if (keyed.pixels == pixels) {
      return keyed.entry;
    }
  }
  return -1;
}

bool RasterDedupCache::insert(std::uint64_t hash, RasterKey pixels,
                              std::int64_t entry) {
  if (max_entries_ != 0 && size_ >= max_entries_) {
    return false;
  }
  buckets_[hash].push_back(Keyed{std::move(pixels), entry});
  ++size_;
  return true;
}

}  // namespace hotspot::scan
