#include "scan/dedup_cache.h"

#include <new>

#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace hotspot::scan {

std::uint64_t hash_raster(const RasterKey& pixels) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const std::uint8_t byte : pixels) {
    hash ^= byte;
    hash *= 1099511628211ULL;  // FNV prime
  }
  // Mix in the length so "all zeros, n pixels" and "all zeros, m pixels"
  // differ even though the byte stream hash would not.
  hash ^= static_cast<std::uint64_t>(pixels.size());
  hash *= 1099511628211ULL;
  return hash;
}

std::int64_t RasterDedupCache::find(std::uint64_t hash,
                                    const RasterKey& pixels) {
  const auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) {
    return -1;
  }
  for (const LruList::iterator node : bucket->second) {
    if (node->pixels == pixels) {
      lru_.splice(lru_.begin(), lru_, node);  // refresh recency
      return node->entry;
    }
  }
  return -1;
}

void RasterDedupCache::evict_lru() {
  const LruList::iterator victim = std::prev(lru_.end());
  std::vector<LruList::iterator>& bucket = buckets_[victim->hash];
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == victim) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      break;
    }
  }
  if (bucket.empty()) {
    buckets_.erase(victim->hash);
  }
  bytes_ -= victim->pixels.size();
  lru_.erase(victim);
  ++evictions_;
  static obs::Counter& evictions_counter =
      obs::MetricsRegistry::global().counter("scan.dedup.evictions");
  evictions_counter.increment();
  publish_bytes_gauge();
}

void RasterDedupCache::publish_bytes_gauge() const {
  // The cache is single-writer, so a plain set is exact. A second live
  // cache instance would clobber this gauge; scans run one cache at a time.
  static obs::Gauge& bytes_gauge =
      obs::MetricsRegistry::global().gauge("scan.dedup.bytes");
  bytes_gauge.set(static_cast<double>(bytes_));
}

bool RasterDedupCache::insert(std::uint64_t hash, RasterKey pixels,
                              std::int64_t entry) {
  if (util::fault_should_fail(util::FaultPoint::kScanAlloc)) {
    throw std::bad_alloc();
  }
  const auto bucket = buckets_.find(hash);
  if (bucket != buckets_.end()) {
    for (const LruList::iterator node : bucket->second) {
      if (node->pixels == pixels) {
        // Re-inserting a cached raster must not grow the LRU list or the
        // byte counter: pushing a duplicate node used to double-count
        // bytes_ (and leave a stale twin that corrupted the count again on
        // eviction). Overwrite in place — the payload is identical, so the
        // accounting is unchanged — and refresh recency like a hit.
        node->entry = entry;
        lru_.splice(lru_.begin(), lru_, node);
        publish_bytes_gauge();
        return true;
      }
    }
  }
  const std::size_t incoming = pixels.size();
  if (max_bytes_ != 0 && incoming > max_bytes_) {
    return false;  // cannot fit even an empty cache; classified, not cached
  }
  while ((max_entries_ != 0 && lru_.size() >= max_entries_) ||
         (max_bytes_ != 0 && bytes_ + incoming > max_bytes_)) {
    evict_lru();
  }
  lru_.push_front(Keyed{hash, std::move(pixels), entry});
  buckets_[hash].push_back(lru_.begin());
  bytes_ += incoming;
  publish_bytes_gauge();
  return true;
}

}  // namespace hotspot::scan
