#include "scan/window_stream.h"

#include <algorithm>

#include "util/check.h"

namespace hotspot::scan {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

ClipWindowStream::ClipWindowStream(const layout::Pattern& full,
                                   std::int64_t size_nm, std::int64_t step_nm)
    : full_(&full), size_nm_(size_nm), step_nm_(step_nm) {
  HOTSPOT_CHECK_GT(size_nm, 0);
  HOTSPOT_CHECK_GT(step_nm, 0);
  HOTSPOT_CHECK_LE(step_nm, size_nm)
      << "step larger than the window edge leaves uncovered stripes "
         "between windows";
  if (full.empty()) {
    return;
  }
  const layout::Rect box = full.bounding_box();
  origin_x_ = box.x0;
  origin_y_ = box.y0;
  // Same grid as layout::extract_clips: one window per step until the
  // position passes the bounding box edge.
  cols_ = ceil_div(box.x1 - box.x0, step_nm_);
  rows_ = ceil_div(box.y1 - box.y0, step_nm_);

  // Bucket the rects by size_nm-edge cells so one window materialization
  // only visits candidates, not the whole chip.
  cell_cols_ = ceil_div(box.x1 - box.x0, size_nm_);
  cell_rows_ = ceil_div(box.y1 - box.y0, size_nm_);
  cells_.resize(static_cast<std::size_t>(cell_cols_ * cell_rows_));
  const auto& rects = full.rects();
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(rects.size()); ++i) {
    const layout::Rect& rect = rects[static_cast<std::size_t>(i)];
    const std::int64_t cx0 = (rect.x0 - origin_x_) / size_nm_;
    const std::int64_t cx1 = (rect.x1 - 1 - origin_x_) / size_nm_;
    const std::int64_t cy0 = (rect.y0 - origin_y_) / size_nm_;
    const std::int64_t cy1 = (rect.y1 - 1 - origin_y_) / size_nm_;
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        cells_[static_cast<std::size_t>(cy * cell_cols_ + cx)].push_back(i);
      }
    }
  }
}

WindowRef ClipWindowStream::window_at(std::int64_t index) const {
  HOTSPOT_CHECK(index >= 0 && index < window_count())
      << "window index " << index << " out of range for " << window_count();
  WindowRef ref;
  ref.index = index;
  ref.ix = index % cols_;
  ref.iy = index / cols_;
  const std::int64_t x = origin_x_ + ref.ix * step_nm_;
  const std::int64_t y = origin_y_ + ref.iy * step_nm_;
  ref.window = layout::Rect{x, y, x + size_nm_, y + size_nm_};
  return ref;
}

bool ClipWindowStream::next(WindowRef& out) {
  if (cursor_ >= window_count()) {
    return false;
  }
  out = window_at(cursor_);
  ++cursor_;
  return true;
}

layout::Clip ClipWindowStream::materialize(const WindowRef& ref) const {
  // Candidate rects from the cells the window overlaps, visited in
  // insertion order so the result matches Pattern::clipped_to exactly.
  std::vector<std::int64_t> candidates;
  const std::int64_t cx0 =
      std::max<std::int64_t>(0, (ref.window.x0 - origin_x_) / size_nm_);
  const std::int64_t cx1 = std::min<std::int64_t>(
      cell_cols_ - 1, (ref.window.x1 - 1 - origin_x_) / size_nm_);
  const std::int64_t cy0 =
      std::max<std::int64_t>(0, (ref.window.y0 - origin_y_) / size_nm_);
  const std::int64_t cy1 = std::min<std::int64_t>(
      cell_rows_ - 1, (ref.window.y1 - 1 - origin_y_) / size_nm_);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const auto& cell = cells_[static_cast<std::size_t>(cy * cell_cols_ + cx)];
      candidates.insert(candidates.end(), cell.begin(), cell.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  layout::Pattern clipped;
  const auto& rects = full_->rects();
  for (const std::int64_t i : candidates) {
    layout::Rect cut =
        layout::intersect(rects[static_cast<std::size_t>(i)], ref.window);
    if (!cut.empty()) {
      cut.x0 -= ref.window.x0;
      cut.x1 -= ref.window.x0;
      cut.y0 -= ref.window.y0;
      cut.y1 -= ref.window.y0;
      clipped.add(cut);
    }
  }
  return layout::Clip{std::move(clipped), size_nm_};
}

}  // namespace hotspot::scan
