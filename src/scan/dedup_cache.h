// Raster-keyed verdict dedup for full-chip scans (DESIGN.md §11, §13).
//
// Tiled chips repeat their window rasters heavily; two windows with the
// same binary raster must get the same verdict from a deterministic
// detector, so the scan only pays inference once per distinct raster. The
// cache keys on the raw {0,1} pixel bytes: a 64-bit FNV-1a hash picks the
// bucket and a full byte comparison confirms the match, so a hash collision
// can never replay the wrong verdict — the bit-identical guarantee survives.
//
// Memory is bounded: an entry cap and a payload-byte cap (either 0 =
// unlimited) evict the least-recently-used raster to make room, so a
// full-chip scan over mostly-unique geometry holds a fixed working set
// instead of growing until OOM. Eviction only costs extra inference when an
// evicted raster reappears (it re-enters under a fresh entry id); verdicts
// are never wrong, and the eviction order is a pure function of the access
// sequence, so journal resume replays it exactly. Evictions are counted
// locally (evictions()) and on the scan.dedup.evictions counter; the live
// payload size is mirrored onto the scan.dedup.bytes gauge.
//
// The cache is single-writer (the scan producer); it is not thread-safe.
// find() refreshes recency, so it is not const.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace hotspot::scan {

using RasterKey = std::vector<std::uint8_t>;

// FNV-1a over the pixel bytes.
std::uint64_t hash_raster(const RasterKey& pixels);

class RasterDedupCache {
 public:
  // `max_entries` bounds the number of distinct rasters remembered and
  // `max_bytes` their total pixel payload; 0 = unlimited. When a cap would
  // be exceeded the least-recently-used entries are evicted to make room.
  explicit RasterDedupCache(std::size_t max_entries = 0,
                            std::size_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  // Entry id for `pixels`, or -1 when the raster is not cached. A hit
  // refreshes the entry's recency.
  std::int64_t find(std::uint64_t hash, const RasterKey& pixels);

  // Remembers `pixels` under `entry` (an id the caller allocates, e.g. a
  // slot in its verdict table), evicting LRU entries as needed. Re-inserting
  // an already-cached raster overwrites its entry id and refreshes recency
  // without growing size() or bytes() — the payload is identical, so the
  // accounting must not change. Returns false only when `pixels` alone
  // exceeds a cap and cannot be cached (scan results stay exact, the hit
  // rate just degrades). Probes the kScanAlloc fault point: an armed fault
  // throws std::bad_alloc before any mutation, the way a real allocation
  // failure would.
  bool insert(std::uint64_t hash, RasterKey pixels, std::int64_t entry);

  std::size_t size() const { return lru_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Keyed {
    std::uint64_t hash = 0;
    RasterKey pixels;
    std::int64_t entry = 0;
  };
  using LruList = std::list<Keyed>;

  void evict_lru();
  // Mirrors bytes_ onto the scan.dedup.bytes gauge after every mutation.
  void publish_bytes_gauge() const;

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  // Front = most recently used; eviction pops the back.
  LruList lru_;
  // Bucketed by hash; each bucket holds full-key nodes so collisions are
  // resolved by comparison, never assumed away.
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> buckets_;
};

}  // namespace hotspot::scan
