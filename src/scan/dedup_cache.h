// Raster-keyed verdict dedup for full-chip scans (DESIGN.md §11).
//
// Tiled chips repeat their window rasters heavily; two windows with the
// same binary raster must get the same verdict from a deterministic
// detector, so the scan only pays inference once per distinct raster. The
// cache keys on the raw {0,1} pixel bytes: a 64-bit FNV-1a hash picks the
// bucket and a full byte comparison confirms the match, so a hash collision
// can never replay the wrong verdict — the bit-identical guarantee survives.
//
// The cache is single-writer (the scan producer); it is not thread-safe.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hotspot::scan {

using RasterKey = std::vector<std::uint8_t>;

// FNV-1a over the pixel bytes.
std::uint64_t hash_raster(const RasterKey& pixels);

class RasterDedupCache {
 public:
  // `max_entries` bounds the number of distinct rasters remembered;
  // 0 = unlimited. When full, new rasters are classified but not cached
  // (scan results stay exact, the hit rate just degrades).
  explicit RasterDedupCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  // Entry id for `pixels`, or -1 when the raster has not been seen.
  std::int64_t find(std::uint64_t hash, const RasterKey& pixels) const;

  // Remembers `pixels` under `entry` (an id the caller allocates, e.g. a
  // slot in its verdict table). Returns false when the cache is full and
  // the raster was dropped.
  bool insert(std::uint64_t hash, RasterKey pixels, std::int64_t entry);

  std::size_t size() const { return size_; }
  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Keyed {
    RasterKey pixels;
    std::int64_t entry = 0;
  };

  std::size_t max_entries_;
  std::size_t size_ = 0;
  // Bucketed by hash; each bucket holds the full keys so collisions are
  // resolved by comparison, never assumed away.
  std::unordered_map<std::uint64_t, std::vector<Keyed>> buckets_;
};

}  // namespace hotspot::scan
