// Information-theoretic feature selection.
//
// The ICCAD'16 baseline ranks candidate features by mutual information with
// the hotspot label and keeps the most informative subset. Features are
// discretized into equal-width bins for the MI estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::features {

// MI (nats) between one feature column and binary labels, with values
// discretized into `bins` equal-width bins over the column's range.
double mutual_information(const tensor::Tensor& features, std::int64_t column,
                          const std::vector<int>& labels, int bins = 16);

// Indices of the `keep` columns with the highest MI, in descending MI
// order.
std::vector<std::int64_t> select_top_features(const tensor::Tensor& features,
                                              const std::vector<int>& labels,
                                              std::int64_t keep,
                                              int bins = 16);

// Projects a feature matrix onto the selected columns.
tensor::Tensor project_columns(const tensor::Tensor& features,
                               const std::vector<std::int64_t>& columns);

}  // namespace hotspot::features
