// Local-density features: the clip is divided into a g x g grid and each
// cell's pattern coverage fraction is one feature. This is the "simplified
// feature extraction" used by the SPIE'15 AdaBoost baseline [11].
#pragma once

#include "dataset/dataset.h"
#include "tensor/tensor.h"

namespace hotspot::features {

// [H,W] binary image -> g*g density vector (row-major cells). H and W must
// be divisible by g.
std::vector<float> density_features(const tensor::Tensor& image,
                                    std::int64_t grid);

// Feature matrix [n, g*g] for a whole dataset.
tensor::Tensor density_matrix(const dataset::HotspotDataset& data,
                              std::int64_t grid);

}  // namespace hotspot::features
