// DCT feature tensors (DAC'17 [16]): the clip image is tiled into blocks,
// each block is 2-D DCT'd, and the low-frequency coefficients become the
// channels of a compact feature tensor the baseline CNN consumes.
#pragma once

#include "dataset/dataset.h"
#include "tensor/dct.h"

namespace hotspot::features {

struct DctTensorSpec {
  std::int64_t block = 4;          // tile edge
  std::int64_t coefficients = 8;   // zig-zag-first coefficients kept
};

// [H,W] image -> [coefficients, H/block, W/block].
tensor::Tensor dct_feature_tensor(const tensor::Tensor& image,
                                  const DctTensorSpec& spec);

// Whole dataset -> [n, coefficients, H/block, W/block] NCHW batch.
tensor::Tensor dct_feature_batch(const dataset::HotspotDataset& data,
                                 const std::vector<std::size_t>& indices,
                                 const DctTensorSpec& spec);

}  // namespace hotspot::features
