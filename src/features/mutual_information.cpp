#include "features/mutual_information.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hotspot::features {

double mutual_information(const tensor::Tensor& features, std::int64_t column,
                          const std::vector<int>& labels, int bins) {
  HOTSPOT_CHECK_EQ(features.rank(), 2);
  HOTSPOT_CHECK(column >= 0 && column < features.dim(1))
      << "column " << column;
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), features.dim(0));
  HOTSPOT_CHECK_GT(bins, 0);
  const std::int64_t n = features.dim(0);
  HOTSPOT_CHECK_GT(n, 0);

  float lo = features.at2(0, column);
  float hi = lo;
  for (std::int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, features.at2(i, column));
    hi = std::max(hi, features.at2(i, column));
  }
  const float span = hi - lo;
  if (span <= 0.0f) {
    return 0.0;  // constant feature carries no information
  }

  // Joint histogram over (bin, label).
  std::vector<std::int64_t> joint(static_cast<std::size_t>(bins) * 2, 0);
  std::vector<std::int64_t> bin_count(static_cast<std::size_t>(bins), 0);
  std::int64_t positives = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    int bin = static_cast<int>((features.at2(i, column) - lo) / span *
                               static_cast<float>(bins));
    bin = std::clamp(bin, 0, bins - 1);
    const int label = labels[static_cast<std::size_t>(i)];
    HOTSPOT_CHECK(label == 0 || label == 1) << "label " << label;
    ++joint[static_cast<std::size_t>(bin) * 2 + static_cast<std::size_t>(label)];
    ++bin_count[static_cast<std::size_t>(bin)];
    positives += label;
  }

  const double total = static_cast<double>(n);
  const double p_label[2] = {(total - static_cast<double>(positives)) / total,
                             static_cast<double>(positives) / total};
  double mi = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double p_bin =
        static_cast<double>(bin_count[static_cast<std::size_t>(b)]) / total;
    if (p_bin == 0.0) {
      continue;
    }
    for (int label = 0; label < 2; ++label) {
      const double p_joint =
          static_cast<double>(
              joint[static_cast<std::size_t>(b) * 2 +
                    static_cast<std::size_t>(label)]) /
          total;
      if (p_joint == 0.0 || p_label[label] == 0.0) {
        continue;
      }
      mi += p_joint * std::log(p_joint / (p_bin * p_label[label]));
    }
  }
  return mi;
}

std::vector<std::int64_t> select_top_features(const tensor::Tensor& features,
                                              const std::vector<int>& labels,
                                              std::int64_t keep, int bins) {
  HOTSPOT_CHECK_EQ(features.rank(), 2);
  const std::int64_t dims = features.dim(1);
  HOTSPOT_CHECK(keep > 0 && keep <= dims)
      << "keep=" << keep << " of " << dims;
  std::vector<std::pair<double, std::int64_t>> ranked;
  ranked.reserve(static_cast<std::size_t>(dims));
  for (std::int64_t c = 0; c < dims; ++c) {
    ranked.emplace_back(mutual_information(features, c, labels, bins), c);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::int64_t> selected;
  selected.reserve(static_cast<std::size_t>(keep));
  for (std::int64_t i = 0; i < keep; ++i) {
    selected.push_back(ranked[static_cast<std::size_t>(i)].second);
  }
  return selected;
}

tensor::Tensor project_columns(const tensor::Tensor& features,
                               const std::vector<std::int64_t>& columns) {
  HOTSPOT_CHECK_EQ(features.rank(), 2);
  HOTSPOT_CHECK(!columns.empty());
  const std::int64_t n = features.dim(0);
  tensor::Tensor projected({n, static_cast<std::int64_t>(columns.size())});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      HOTSPOT_CHECK(columns[c] >= 0 && columns[c] < features.dim(1))
          << "column " << columns[c];
      projected.at2(i, static_cast<std::int64_t>(c)) =
          features.at2(i, columns[c]);
    }
  }
  return projected;
}

}  // namespace hotspot::features
