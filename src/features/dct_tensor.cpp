#include "features/dct_tensor.h"

#include "util/check.h"

namespace hotspot::features {

tensor::Tensor dct_feature_tensor(const tensor::Tensor& image,
                                  const DctTensorSpec& spec) {
  return tensor::block_dct_features(image, spec.block, spec.coefficients);
}

tensor::Tensor dct_feature_batch(const dataset::HotspotDataset& data,
                                 const std::vector<std::size_t>& indices,
                                 const DctTensorSpec& spec) {
  HOTSPOT_CHECK(!indices.empty());
  const std::int64_t ls = data.image_size();
  HOTSPOT_CHECK_EQ(ls % spec.block, 0);
  const std::int64_t tiles = ls / spec.block;
  tensor::Tensor batch({static_cast<std::int64_t>(indices.size()),
                        spec.coefficients, tiles, tiles});
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const tensor::Tensor features =
        dct_feature_tensor(data.sample(indices[b]).to_image(), spec);
    float* dst = batch.data() +
                 static_cast<std::int64_t>(b) * features.numel();
    for (std::int64_t i = 0; i < features.numel(); ++i) {
      dst[i] = features[i];
    }
  }
  return batch;
}

}  // namespace hotspot::features
