#include "features/density.h"

#include "util/check.h"

namespace hotspot::features {

std::vector<float> density_features(const tensor::Tensor& image,
                                    std::int64_t grid) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(grid, 0);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  HOTSPOT_CHECK_EQ(h % grid, 0);
  HOTSPOT_CHECK_EQ(w % grid, 0);
  const std::int64_t cell_h = h / grid;
  const std::int64_t cell_w = w / grid;
  const auto cell_area = static_cast<float>(cell_h * cell_w);
  std::vector<float> features(static_cast<std::size_t>(grid * grid));
  for (std::int64_t gy = 0; gy < grid; ++gy) {
    for (std::int64_t gx = 0; gx < grid; ++gx) {
      float total = 0.0f;
      for (std::int64_t y = 0; y < cell_h; ++y) {
        for (std::int64_t x = 0; x < cell_w; ++x) {
          total += image.at2(gy * cell_h + y, gx * cell_w + x);
        }
      }
      features[static_cast<std::size_t>(gy * grid + gx)] = total / cell_area;
    }
  }
  return features;
}

tensor::Tensor density_matrix(const dataset::HotspotDataset& data,
                              std::int64_t grid) {
  HOTSPOT_CHECK(!data.empty());
  const auto n = static_cast<std::int64_t>(data.size());
  tensor::Tensor matrix({n, grid * grid});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto features = density_features(
        data.sample(static_cast<std::size_t>(i)).to_image(), grid);
    for (std::size_t f = 0; f < features.size(); ++f) {
      matrix.at2(i, static_cast<std::int64_t>(f)) = features[f];
    }
  }
  return matrix;
}

}  // namespace hotspot::features
