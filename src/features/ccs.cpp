#include "features/ccs.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace hotspot::features {

std::vector<float> ccs_features(const tensor::Tensor& image,
                                const CcsSpec& spec) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(spec.circles, 0);
  HOTSPOT_CHECK_GT(spec.segments_per_circle, 0);
  HOTSPOT_CHECK_GT(spec.samples_per_segment, 0);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  const double cy = static_cast<double>(h - 1) / 2.0;
  const double cx = static_cast<double>(w - 1) / 2.0;
  const double max_radius = std::min(cy, cx);

  std::vector<float> features;
  features.reserve(
      static_cast<std::size_t>(spec.circles * spec.segments_per_circle));
  for (std::int64_t c = 0; c < spec.circles; ++c) {
    // Radii spread from near-centre to the clip edge.
    const double radius = max_radius * static_cast<double>(c + 1) /
                          static_cast<double>(spec.circles);
    for (std::int64_t s = 0; s < spec.segments_per_circle; ++s) {
      double sum = 0.0;
      for (std::int64_t k = 0; k < spec.samples_per_segment; ++k) {
        const double fraction =
            (static_cast<double>(s) +
             (static_cast<double>(k) + 0.5) /
                 static_cast<double>(spec.samples_per_segment)) /
            static_cast<double>(spec.segments_per_circle);
        const double angle = 2.0 * std::numbers::pi * fraction;
        const auto y = static_cast<std::int64_t>(
            std::lround(cy + radius * std::sin(angle)));
        const auto x = static_cast<std::int64_t>(
            std::lround(cx + radius * std::cos(angle)));
        if (y >= 0 && y < h && x >= 0 && x < w) {
          sum += static_cast<double>(image.at2(y, x));
        }
      }
      features.push_back(static_cast<float>(
          sum / static_cast<double>(spec.samples_per_segment)));
    }
  }
  return features;
}

tensor::Tensor ccs_matrix(const dataset::HotspotDataset& data,
                          const CcsSpec& spec) {
  HOTSPOT_CHECK(!data.empty());
  const auto n = static_cast<std::int64_t>(data.size());
  const std::int64_t dims = spec.circles * spec.segments_per_circle;
  tensor::Tensor matrix({n, dims});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto features =
        ccs_features(data.sample(static_cast<std::size_t>(i)).to_image(), spec);
    for (std::size_t f = 0; f < features.size(); ++f) {
      matrix.at2(i, static_cast<std::int64_t>(f)) = features[f];
    }
  }
  return matrix;
}

}  // namespace hotspot::features
