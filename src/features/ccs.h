// Concentric-circle-sampling (CCS) features.
//
// The ICCAD'16 baseline [14] samples the layout along concentric circles
// around the clip centre and optimizes the feature set with an
// information-theoretic criterion. Each circle is divided into arc segments;
// a feature is the mean pattern coverage over the pixels of one segment.
#pragma once

#include "dataset/dataset.h"
#include "tensor/tensor.h"

namespace hotspot::features {

struct CcsSpec {
  std::int64_t circles = 8;            // number of radii
  std::int64_t segments_per_circle = 8;  // arc segments per circle
  std::int64_t samples_per_segment = 8;  // sampled points per segment
};

// Feature vector of circles*segments values for a [H,W] image.
std::vector<float> ccs_features(const tensor::Tensor& image,
                                const CcsSpec& spec);

// Feature matrix [n, circles*segments].
tensor::Tensor ccs_matrix(const dataset::HotspotDataset& data,
                          const CcsSpec& spec);

}  // namespace hotspot::features
