#include "serve/model_registry.h"

#include <utility>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/rng.h"

namespace hotspot::serve {
namespace {

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

}  // namespace

ServableModel::ServableModel(std::string path, std::int64_t image_size,
                             std::uint64_t version)
    : path_(std::move(path)), image_size_(image_size), version_(version) {
  // The constructed weights are placeholders — load_checkpoint overwrites
  // every tensor (strict name/shape match) or fails — so the init seed is
  // irrelevant to served results.
  core::BrnnConfig config = core::BrnnConfig::compact(image_size_);
  util::Rng rng(0x53455256);  // "SERV"
  model_ = std::make_unique<core::BrnnModel>(config, rng);
  load_result_ = nn::load_checkpoint(path_, *model_);
  if (load_result_.ok()) {
    model_->set_training(false);
    model_->set_backend(core::Backend::kPacked);
  } else {
    model_.reset();
  }
}

std::vector<int> ServableModel::predict(const tensor::Tensor& images) {
  std::lock_guard<std::mutex> lock(predict_mutex_);
  // Chaos probe: an armed stall wedges the batch worker here, which is how
  // shed tests fill the admission queue deterministically.
  util::fault_maybe_stall(util::FaultPoint::kScanPredictStall);
  return model_->predict(images);
}

ModelRegistry::ModelRegistry(std::string state_path)
    : state_path_(std::move(state_path)) {}

nn::LoadResult ModelRegistry::load(const std::string& path,
                                   std::int64_t image_size) {
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    version = next_version_;
  }
  // Build and validate entirely off to the side: in-flight batches keep
  // running on the old model, and a failed load publishes nothing.
  auto candidate = std::make_shared<ServableModel>(path, image_size, version);
  if (!candidate->load_result().ok()) {
    static obs::Counter& failed_counter =
        obs::MetricsRegistry::global().counter("serve.swap_failures");
    failed_counter.increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last_swap_ok_ = false;
      last_swap_error_ = candidate->load_result().message;
      ++swap_failures_;
    }
    return candidate->load_result();
  }
  std::string state_error;
  if (!write_state(*candidate, &state_error)) {
    // A model we cannot record would silently vanish on restart; refuse the
    // swap so the operator sees the problem while the old model serves on.
    std::lock_guard<std::mutex> lock(mutex_);
    last_swap_ok_ = false;
    last_swap_error_ = state_error;
    ++swap_failures_;
    return nn::IoResult::failure(nn::IoStatus::kWriteFailed, state_error);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_ = std::move(candidate);
    next_version_ = version + 1;
    last_swap_ok_ = true;
    last_swap_error_.clear();
  }
  static obs::Counter& swap_counter =
      obs::MetricsRegistry::global().counter("serve.swaps");
  swap_counter.increment();
  static obs::Gauge& version_gauge =
      obs::MetricsRegistry::global().gauge("serve.model_version");
  version_gauge.set(static_cast<double>(version));
  return nn::IoResult::success();
}

nn::LoadResult ModelRegistry::restore() {
  if (state_path_.empty()) {
    return nn::IoResult::failure(nn::IoStatus::kMissing,
                                 "registry persistence disabled");
  }
  util::JsonValue state;
  std::string error;
  if (!util::parse_json_file(state_path_, state, error)) {
    return nn::IoResult::failure(nn::IoStatus::kMissing,
                                 state_path_ + ": " + error);
  }
  const util::JsonValue* schema = state.find("schema_version");
  const util::JsonValue* path = state.find("model_path");
  const util::JsonValue* image_size = state.find("image_size");
  const util::JsonValue* version = state.find("version");
  if (schema == nullptr || !schema->is_number() ||
      schema->as_number() != 1.0 || path == nullptr || !path->is_string() ||
      image_size == nullptr || !image_size->is_number() ||
      version == nullptr || !version->is_number()) {
    return nn::IoResult::failure(nn::IoStatus::kBadFormat,
                                 state_path_ + ": malformed registry state");
  }
  {
    // Resume the version sequence so post-restart swaps keep ascending.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto recorded = static_cast<std::uint64_t>(version->as_number());
    if (recorded >= next_version_) {
      next_version_ = recorded;
    }
  }
  return load(path->as_string(),
              static_cast<std::int64_t>(image_size->as_number()));
}

std::shared_ptr<ServableModel> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ != nullptr ? active_->version() : 0;
}

ModelRegistry::SwapStatus ModelRegistry::swap_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SwapStatus status;
  status.model_registered = active_ != nullptr;
  if (active_ != nullptr) {
    status.active_version = active_->version();
    status.active_path = active_->path();
    status.image_size = active_->image_size();
  }
  status.last_ok = last_swap_ok_;
  status.last_error = last_swap_error_;
  status.failures = swap_failures_;
  return status;
}

bool ModelRegistry::write_state(const ServableModel& model,
                                std::string* error) const {
  if (state_path_.empty()) {
    return true;  // persistence disabled
  }
  // Same atomic publication discipline as checkpoints (§9): a crash during
  // the write leaves the previous state file intact, so restore() always
  // sees a complete record.
  util::AtomicFileWriter writer(
      state_path_, {util::FaultPoint::kCheckpointWrite,
                    util::FaultPoint::kCheckpointFlush,
                    util::FaultPoint::kCheckpointRename});
  const std::string text =
      "{\"schema_version\": 1, \"model_path\": \"" +
      json_escape(model.path()) +
      "\", \"image_size\": " + std::to_string(model.image_size()) +
      ", \"version\": " + std::to_string(model.version()) + "}\n";
  if (!writer.ok() || !writer.write(text.data(), text.size()) ||
      !writer.finalize()) {
    *error = writer.error();
    return false;
  }
  return true;
}

}  // namespace hotspot::serve
