#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "util/check.h"

namespace hotspot::serve {
namespace {

// A scrape request has no business being bigger than this; anything longer
// is garbage (or not HTTP) and the connection is dropped.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  return escaped;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

// "/tracez?limit=5&dump=1" -> path "/tracez", params {{"limit","5"},...}.
void split_target(const std::string& target, std::string* path,
                  std::vector<std::pair<std::string, std::string>>* params) {
  const std::size_t query = target.find('?');
  *path = target.substr(0, query);
  if (query == std::string::npos) {
    return;
  }
  std::size_t pos = query + 1;
  while (pos < target.size()) {
    std::size_t next = target.find('&', pos);
    if (next == std::string::npos) {
      next = target.size();
    }
    const std::string pair = target.substr(pos, next - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      params->emplace_back(pair, "");
    } else {
      params->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = next + 1;
  }
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::AdminServer(const AdminConfig& config, Server* server)
    : config_(config), server_(server) {
  HOTSPOT_CHECK(server_ != nullptr);
}

AdminServer::~AdminServer() { stop(); }

bool AdminServer::start(std::string* error) {
  HOTSPOT_CHECK(!running_.load()) << "start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void AdminServer::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::accept_loop() {
  // Connections are handled inline: a scrape is a single bounded read and
  // one write, so serializing them keeps the endpoint to one thread. A
  // stalled client can hold the loop for at most the 2 s receive timeout.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket shut down — stopping
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    serve_connection(fd);
    ::close(fd);
  }
}

void AdminServer::serve_connection(int fd) {
  std::string request;
  char buffer[1024];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // timeout, reset, or EOF before a full request line
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }
  // "GET /path HTTP/1.0" — the headers that may follow are ignored.
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  Response response;
  if (method_end == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else {
    const std::size_t target_end = line.find(' ', method_end + 1);
    const std::string method = line.substr(0, method_end);
    const std::string target =
        target_end == std::string::npos
            ? line.substr(method_end + 1)
            : line.substr(method_end + 1, target_end - method_end - 1);
    response = handle(method, target);
  }
  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     status_reason(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, response.body.data(), response.body.size());
  }
}

AdminServer::Response AdminServer::handle(const std::string& method,
                                          const std::string& target) {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  }
  std::string path;
  std::vector<std::pair<std::string, std::string>> params;
  split_target(target, &path, &params);

  if (path == "/metrics") {
    // Refresh the derived gauges so every scrape sees current values, not
    // whatever the last stats request happened to publish.
    server_->slo_monitor().publish();
    obs::publish_timeline_metrics();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            obs::to_prometheus(obs::MetricsRegistry::global().snapshot(),
                               obs::collect_span_report())};
  }

  if (path == "/healthz") {
    const ModelRegistry::SwapStatus swap = server_->registry().swap_status();
    const bool healthy = swap.model_registered && swap.last_ok;
    std::string body = "{\"healthy\": ";
    body += healthy ? "true" : "false";
    body += ", \"model_registered\": ";
    body += swap.model_registered ? "true" : "false";
    body += ", \"model_version\": " + std::to_string(swap.active_version);
    body += ", \"model_path\": \"" + json_escape(swap.active_path) + "\"";
    body += ", \"image_size\": " + std::to_string(swap.image_size);
    body += ", \"last_swap_ok\": ";
    body += swap.last_ok ? "true" : "false";
    body += ", \"last_swap_error\": \"" + json_escape(swap.last_error) + "\"";
    body += ", \"swap_failures\": " + std::to_string(swap.failures);
    body +=
        ", \"queue_depth_clips\": " + std::to_string(
                                          server_->queue_depth_clips());
    body += ", \"queue_capacity_clips\": " +
            std::to_string(server_->queue_capacity_clips());
    body += "}\n";
    return {healthy ? 200 : 503, "application/json", std::move(body)};
  }

  if (path == "/varz") {
    server_->slo_monitor().publish();
    obs::publish_timeline_metrics();
    return {200, "application/json",
            obs::to_json(obs::MetricsRegistry::global().snapshot(),
                         obs::collect_span_report(),
                         obs::collect_manifest()) +
                "\n"};
  }

  if (path == "/tracez") {
    std::size_t limit = 0;
    bool dump = false;
    for (const auto& [key, value] : params) {
      if (key == "limit") {
        limit = static_cast<std::size_t>(
            std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "dump") {
        dump = value == "1";
      }
    }
    const std::string flight = server_->flight_recorder().to_json(limit);
    if (!dump) {
      return {200, "application/json", flight + "\n"};
    }
    if (config_.flight_dump_path.empty()) {
      return {400, "application/json",
              "{\"error\": \"no flight dump path configured\"}\n"};
    }
    std::string dump_error;
    const bool ok =
        server_->flight_recorder().dump(config_.flight_dump_path, &dump_error);
    std::string body = "{\"dump_path\": \"" +
                       json_escape(config_.flight_dump_path) +
                       "\", \"dump_ok\": ";
    body += ok ? "true" : "false";
    if (!ok) {
      body += ", \"dump_error\": \"" + json_escape(dump_error) + "\"";
    }
    body += ", \"flight\": " + flight + "}\n";
    return {ok ? 200 : 500, "application/json", std::move(body)};
  }

  return {404, "text/plain; charset=utf-8",
          "unknown path; try /metrics /healthz /varz /tracez\n"};
}

}  // namespace hotspot::serve
