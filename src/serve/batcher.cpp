#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace hotspot::serve {

MicroBatcher::MicroBatcher(const BatcherConfig& config, BatchFn classify)
    : config_(config),
      classify_(std::move(classify)),
      queue_(config.max_queue_clips) {
  HOTSPOT_CHECK_GT(config_.max_batch_clips, std::size_t{0});
  HOTSPOT_CHECK_LE(config_.max_batch_clips, config_.max_queue_clips)
      << "a full batch must fit in the admission queue";
  HOTSPOT_CHECK(classify_ != nullptr);
  worker_ = std::thread([this] { worker_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

AdmitStatus MicroBatcher::submit(tensor::Tensor images,
                                 std::future<std::vector<int>>* result,
                                 std::shared_ptr<obs::RequestTrace> trace) {
  HOTSPOT_CHECK_EQ(images.rank(), 4) << "submit expects [n, 1, ls, ls]";
  const std::int64_t count = images.dim(0);
  HOTSPOT_CHECK_GT(count, 0) << "empty request";
  if (static_cast<std::size_t>(count) > config_.max_batch_clips) {
    return AdmitStatus::kTooLarge;
  }
  if (stopped_.load(std::memory_order_acquire)) {
    return AdmitStatus::kStopped;
  }
  auto job = std::make_unique<Job>();
  job->images = std::move(images);
  job->count = count;
  job->trace = std::move(trace);
  if (job->trace != nullptr) {
    job->submitted = std::chrono::steady_clock::now();
  }
  std::future<std::vector<int>> future = job->promise.get_future();
  if (!queue_.try_push(std::move(job), static_cast<std::size_t>(count))) {
    if (queue_.closed()) {
      return AdmitStatus::kStopped;
    }
    static obs::Counter& shed_counter =
        obs::MetricsRegistry::global().counter("serve.shed");
    shed_counter.increment();
    return AdmitStatus::kShed;
  }
  *result = std::move(future);
  return AdmitStatus::kOk;
}

void MicroBatcher::stop() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();  // queued jobs still drain through the worker
  if (worker_.joinable()) {
    worker_.join();
  }
}

void MicroBatcher::worker_loop() {
  for (;;) {
    std::optional<std::unique_ptr<Job>> first = queue_.pop();
    if (!first.has_value()) {
      return;  // closed and drained
    }
    if ((*first)->trace != nullptr) {
      (*first)->popped = std::chrono::steady_clock::now();
    }
    std::vector<std::unique_ptr<Job>> jobs;
    std::size_t batch_clips = static_cast<std::size_t>((*first)->count);
    jobs.push_back(std::move(*first));
    // Formation window: measured from the first job reaching the worker,
    // so an idle server adds no latency and a busy one ships every
    // batch_deadline at the latest.
    const auto deadline =
        std::chrono::steady_clock::now() + config_.batch_deadline;
    while (batch_clips < config_.max_batch_clips) {
      std::optional<std::unique_ptr<Job>> next = queue_.pop_until(deadline);
      if (!next.has_value()) {
        break;  // deadline hit, or closed and drained
      }
      if ((*next)->trace != nullptr) {
        (*next)->popped = std::chrono::steady_clock::now();
      }
      const std::size_t count = static_cast<std::size_t>((*next)->count);
      if (batch_clips + count > config_.max_batch_clips) {
        // Never split a request: ship what we have, then start the next
        // batch with this job so it is not reordered behind later arrivals.
        run_batch(std::move(jobs));
        jobs.clear();
        batch_clips = 0;
      }
      batch_clips += count;
      jobs.push_back(std::move(*next));
    }
    run_batch(std::move(jobs));
  }
}

void MicroBatcher::run_batch(std::vector<std::unique_ptr<Job>> jobs) {
  if (jobs.empty()) {
    return;
  }
  const std::int64_t grid = jobs.front()->images.dim(2);
  std::int64_t total = 0;
  for (const std::unique_ptr<Job>& job : jobs) {
    HOTSPOT_CHECK_EQ(job->images.dim(2), grid)
        << "mixed grid sizes in one batch";
    total += job->count;
  }
  const std::int64_t clip_numel = grid * grid;
  tensor::Tensor fused(tensor::Shape{total, 1, grid, grid});
  std::int64_t offset = 0;
  for (const std::unique_ptr<Job>& job : jobs) {
    const std::int64_t numel = job->count * clip_numel;
    std::copy(job->images.data(), job->images.data() + numel,
              fused.data() + offset);
    offset += numel;
  }
  // Ship time: batch formation ends here, inference begins. Only traced
  // jobs pay the clock reads.
  const bool any_trace = std::any_of(
      jobs.begin(), jobs.end(),
      [](const std::unique_ptr<Job>& job) { return job->trace != nullptr; });
  const auto shipped = any_trace ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  BatchResult result;
  try {
    result = classify_(fused);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (std::unique_ptr<Job>& job : jobs) {
      job->promise.set_exception(error);
    }
    return;
  }
  const double infer_seconds =
      any_trace ? std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - shipped)
                      .count()
                : 0.0;
  std::vector<int>& labels = result.labels;
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), total)
      << "classifier returned wrong label count";
  static obs::Counter& batch_counter =
      obs::MetricsRegistry::global().counter("serve.batches");
  static obs::Histogram& batch_clip_histogram =
      obs::MetricsRegistry::global().histogram(
          "serve.batch_clips", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                                256.0});
  batch_counter.increment();
  batch_clip_histogram.observe(static_cast<double>(total));
  batches_.fetch_add(1, std::memory_order_relaxed);
  clips_.fetch_add(static_cast<std::uint64_t>(total),
                   std::memory_order_relaxed);
  std::size_t label_offset = 0;
  for (std::unique_ptr<Job>& job : jobs) {
    std::vector<int> slice(
        labels.begin() + static_cast<std::ptrdiff_t>(label_offset),
        labels.begin() +
            static_cast<std::ptrdiff_t>(label_offset +
                                        static_cast<std::size_t>(job->count)));
    label_offset += static_cast<std::size_t>(job->count);
    if (job->trace != nullptr) {
      // Written before set_value: the promise/future hand-off publishes
      // these fields to the submitting thread (release/acquire).
      job->trace->queue_seconds =
          std::chrono::duration<double>(job->popped - job->submitted).count();
      job->trace->batch_seconds =
          std::chrono::duration<double>(shipped - job->popped).count();
      job->trace->infer_seconds = infer_seconds;
      job->trace->model_version = result.model_version;
      static obs::Histogram& queue_seconds =
          obs::MetricsRegistry::global().histogram(
              "serve.request.queue_seconds", obs::default_latency_buckets());
      static obs::Histogram& batch_seconds =
          obs::MetricsRegistry::global().histogram(
              "serve.request.batch_seconds", obs::default_latency_buckets());
      static obs::Histogram& infer_histogram =
          obs::MetricsRegistry::global().histogram(
              "serve.request.infer_seconds", obs::default_latency_buckets());
      queue_seconds.observe(job->trace->queue_seconds);
      batch_seconds.observe(job->trace->batch_seconds);
      infer_histogram.observe(infer_seconds);
    }
    job->promise.set_value(std::move(slice));
  }
}

}  // namespace hotspot::serve
