// Persistent hotspot-detection server (DESIGN.md §15).
//
// Socket front end on 127.0.0.1: an accept thread hands each connection to
// its own reader thread, which decodes CRC-framed requests (protocol.h),
// unpacks the bit-packed rasters, and submits them to the shared
// MicroBatcher. The batcher's single worker fuses requests across clients
// into one classifier call; per-request futures carry the sliced labels
// back to the connection threads.
//
// Failure policy, per frame:
//   * unparseable / corrupt frame  -> Reject(kBadFrame), connection closed
//     (framing is lost, so the stream cannot be trusted further);
//   * structurally invalid request -> typed Reject, connection stays open;
//   * admission queue full         -> Reject(kQueueFull) — load shed;
//   * no model registered          -> Reject(kModelUnavailable).
//
// Hot-swap: a SwapModel frame drives ModelRegistry::load. The batcher's
// BatchFn resolves registry->active() once per fused batch, so every batch
// (and therefore every request, which is never split) runs on exactly one
// model version; in-flight batches finish on the version they resolved.
//
// Metrics (obs registry): serve.requests / serve.clips / serve.shed /
// serve.rejects / serve.bad_frames / serve.connections / serve.swaps, the
// serve.request_seconds latency histogram (p50/p95/p99 in exports), and
// per-tenant counters serve.tenant.<name>.requests / .clips.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/request_trace.h"
#include "obs/slo.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace hotspot::serve {

struct ServerConfig {
  // 0 binds an ephemeral port; bound_port() reports the real one.
  int port = 0;
  // Accept backlog and the cap on simultaneously served connections.
  int max_connections = 32;
  // Per-request clip cap, enforced before unpacking. Must not exceed
  // batcher.max_batch_clips (a request is never split).
  std::size_t max_clips_per_request = 64;
  BatcherConfig batcher;
  // SLO objectives for the rolling error-budget gauges (obs/slo.h). Shed
  // and typed-reject outcomes count against the budget.
  obs::SloConfig slo;
  // Completed-request summaries retained for /tracez and the fatal-signal
  // flight dump.
  std::size_t flight_recorder_capacity = 1024;
};

class Server {
 public:
  // The registry is shared: the caller may load/swap models concurrently
  // with serving (that is the point). It must outlive the server.
  Server(const ServerConfig& config, ModelRegistry* registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:<port> and starts the accept loop. False with `error`
  // set when the socket cannot be bound.
  bool start(std::string* error);

  // Port actually bound (resolves port 0); 0 before start().
  int bound_port() const { return bound_port_; }

  // Blocks until stop() is called (by a Shutdown frame or another thread).
  void wait();

  // Stops accepting, unblocks every connection, drains the batcher, joins
  // all threads. Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Observability surface (valid for the server's whole lifetime, admin
  // endpoint and tests read them concurrently with serving).
  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }
  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  obs::SloMonitor& slo_monitor() { return slo_monitor_; }
  ModelRegistry& registry() { return *registry_; }
  // Clips waiting in the admission queue right now (0 before start()).
  std::size_t queue_depth_clips() const {
    return batcher_ != nullptr ? batcher_->queued_clips() : 0;
  }
  std::size_t queue_capacity_clips() const {
    return config_.batcher.max_queue_clips;
  }

 private:
  // Sets stopping_ under stop_mutex_ and wakes wait()ers.
  void signal_stopping();
  void accept_loop();
  void serve_connection(int fd);
  // One request, already decoded. `trace` was allocated at frame decode
  // (decode_seconds filled, identity fields set). Returns false when the
  // connection should close (shutdown or send failure).
  bool handle_predict(int fd, const PredictRequest& request,
                      const std::shared_ptr<obs::RequestTrace>& trace,
                      std::uint16_t peer_version);
  // Stamps outcome/total, records into the flight recorder and SLO window,
  // and observes the decode/encode phase histograms.
  void finish_request(const std::shared_ptr<obs::RequestTrace>& trace,
                      obs::RequestOutcome outcome, double total_seconds);
  bool send_frame(int fd, MessageType type,
                  const std::vector<std::uint8_t>& payload,
                  std::uint16_t peer_version = kProtocolVersion,
                  std::uint64_t trace_id = 0);
  bool send_reject(int fd, std::uint32_t request_id, RejectReason reason,
                   const std::string& detail,
                   std::uint16_t peer_version = kProtocolVersion,
                   std::uint64_t trace_id = 0);

  ServerConfig config_;
  ModelRegistry* registry_;
  obs::FlightRecorder flight_recorder_;
  obs::SloMonitor slo_monitor_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::unique_ptr<MicroBatcher> batcher_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::pair<int, std::thread>> connections_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
};

}  // namespace hotspot::serve
