#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace hotspot::serve {
namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(const std::string& host, int port,
                          std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServeClient::send_bytes(const std::vector<std::uint8_t>& bytes,
                             std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    *error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool ServeClient::read_one(Frame* frame, std::string* error) {
  const ReadFn reader = [this](std::uint8_t* out,
                               std::size_t size) -> std::size_t {
    for (;;) {
      const ssize_t n = ::recv(fd_, out, size, 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return n > 0 ? static_cast<std::size_t>(n) : 0;
    }
  };
  const FrameStatus status = read_frame(reader, frame);
  if (status != FrameStatus::kOk) {
    *error = std::string("response frame: ") + frame_status_name(status);
    return false;
  }
  last_trace_id_ = frame->trace_id;
  last_frame_version_ = frame->version;
  return true;
}

bool ServeClient::predict(const std::string& tenant,
                          const tensor::Tensor& images,
                          PredictOutcome* outcome, std::string* error) {
  HOTSPOT_CHECK_EQ(images.rank(), 4) << "predict expects [n, 1, ls, ls]";
  PredictRequest request;
  request.request_id = next_request_id_++;
  request.grid = static_cast<std::uint16_t>(images.dim(2));
  request.count = static_cast<std::uint16_t>(images.dim(0));
  request.tenant = tenant;
  request.packed_clips =
      pack_rasters(images.data(), static_cast<std::size_t>(images.dim(0)),
                   request.grid);
  if (!send_bytes(encode_frame(MessageType::kPredictRequest,
                               encode_predict_request(request)),
                  error)) {
    return false;
  }
  Frame frame;
  if (!read_one(&frame, error)) {
    return false;
  }
  if (frame.type == MessageType::kReject) {
    Reject reject;
    if (!decode_reject(frame.payload, &reject)) {
      *error = "undecodable reject";
      return false;
    }
    outcome->ok = false;
    outcome->reason = reject.reason;
    outcome->detail = reject.detail;
    outcome->labels.clear();
    return true;
  }
  if (frame.type != MessageType::kPredictResponse) {
    *error = "unexpected response type";
    return false;
  }
  PredictResponse response;
  if (!decode_predict_response(frame.payload, &response)) {
    *error = "undecodable predict response";
    return false;
  }
  if (response.request_id != request.request_id) {
    *error = "response id mismatch";
    return false;
  }
  outcome->ok = true;
  outcome->labels.assign(response.labels.begin(), response.labels.end());
  outcome->detail.clear();
  return true;
}

bool ServeClient::ping(std::uint32_t token, std::string* error) {
  if (!send_bytes(encode_frame(MessageType::kPing, encode_token(token)),
                  error)) {
    return false;
  }
  Frame frame;
  if (!read_one(&frame, error)) {
    return false;
  }
  std::uint32_t echoed = 0;
  if (frame.type != MessageType::kPong ||
      !decode_token(frame.payload, &echoed) || echoed != token) {
    *error = "bad pong";
    return false;
  }
  return true;
}

bool ServeClient::swap_model(const std::string& path, std::int64_t image_size,
                             std::uint64_t* version,
                             std::optional<Reject>* reject,
                             std::string* error) {
  SwapModel swap;
  swap.request_id = next_request_id_++;
  swap.image_size = static_cast<std::uint16_t>(image_size);
  swap.path = path;
  if (!send_bytes(
          encode_frame(MessageType::kSwapModel, encode_swap_model(swap)),
          error)) {
    return false;
  }
  Frame frame;
  if (!read_one(&frame, error)) {
    return false;
  }
  if (frame.type == MessageType::kReject) {
    Reject decoded;
    if (!decode_reject(frame.payload, &decoded)) {
      *error = "undecodable reject";
      return false;
    }
    *reject = std::move(decoded);
    return true;
  }
  SwapOk ok;
  if (frame.type != MessageType::kSwapOk ||
      !decode_swap_ok(frame.payload, &ok)) {
    *error = "unexpected swap response";
    return false;
  }
  *version = ok.version;
  reject->reset();
  return true;
}

bool ServeClient::stats(std::string* json, std::string* error) {
  if (!send_bytes(encode_frame(MessageType::kStatsRequest, {}), error)) {
    return false;
  }
  Frame frame;
  if (!read_one(&frame, error)) {
    return false;
  }
  if (frame.type != MessageType::kStatsResponse) {
    *error = "unexpected stats response";
    return false;
  }
  json->assign(frame.payload.begin(), frame.payload.end());
  return true;
}

bool ServeClient::shutdown_server(std::string* error) {
  if (!send_bytes(encode_frame(MessageType::kShutdown, {}), error)) {
    return false;
  }
  Frame frame;
  if (!read_one(&frame, error)) {
    return false;
  }
  if (frame.type != MessageType::kShutdownOk) {
    *error = "unexpected shutdown response";
    return false;
  }
  return true;
}

bool ServeClient::send_raw(const std::vector<std::uint8_t>& bytes,
                           Frame* response, std::string* error) {
  if (!send_bytes(bytes, error)) {
    return false;
  }
  return read_one(response, error);
}

}  // namespace hotspot::serve
