// Blocking client for the hotspot detection server (DESIGN.md §15).
//
// One connection, one in-flight request at a time (the server pipelines
// across clients, not within one). Every call decodes the server's typed
// responses: a Reject frame becomes a structured outcome, not an error
// string, so load generators can distinguish shed traffic (kQueueFull —
// back off and retry) from caller bugs.
//
// send_raw() ships arbitrary bytes, which is how the CI smoke leg injects
// a deliberately malformed frame and asserts the server answers with
// Reject(kBadFrame) and drops the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace hotspot::serve {

// What the server said to one predict call. `ok` distinguishes a label
// response from a typed reject.
struct PredictOutcome {
  bool ok = false;
  std::vector<int> labels;
  RejectReason reason = RejectReason::kBadRequest;
  std::string detail;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to 127.0.0.1:<port> (`host` must be a dotted quad). False
  // with `error` set on failure.
  bool connect(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  // Classifies a [n, 1, ls, ls] {0,1} batch. Packs the rasters, round-trips
  // one request, fills `outcome`. False with `error` set only on transport
  // failure (a Reject is a successful round-trip with outcome->ok false).
  bool predict(const std::string& tenant, const tensor::Tensor& images,
               PredictOutcome* outcome, std::string* error);

  // Round-trips a Ping; false on transport failure or token mismatch.
  bool ping(std::uint32_t token, std::string* error);

  // Asks the server to hot-swap to `path`. On success fills `version`
  // (the registry version now serving); a typed refusal lands in `reject`.
  bool swap_model(const std::string& path, std::int64_t image_size,
                  std::uint64_t* version, std::optional<Reject>* reject,
                  std::string* error);

  // Fetches the server's metrics snapshot as JSON.
  bool stats(std::string* json, std::string* error);

  // Requests a clean server shutdown; true when ShutdownOk came back.
  bool shutdown_server(std::string* error);

  // Ships raw bytes with no framing (for malformed-frame tests) and reads
  // whatever single frame the server answers with.
  bool send_raw(const std::vector<std::uint8_t>& bytes, Frame* response,
                std::string* error);

  // Trace id and protocol version carried by the last response frame
  // (0 until the first round-trip; trace id stays 0 from a v1 server).
  // The id is what /tracez and the flight dump key on, so a load generator
  // can log it next to its own request ids.
  std::uint64_t last_trace_id() const { return last_trace_id_; }
  std::uint16_t last_frame_version() const { return last_frame_version_; }

 private:
  bool send_bytes(const std::vector<std::uint8_t>& bytes, std::string* error);
  bool read_one(Frame* frame, std::string* error);

  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
  std::uint64_t last_trace_id_ = 0;
  std::uint16_t last_frame_version_ = 0;
};

}  // namespace hotspot::serve
