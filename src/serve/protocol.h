// Wire protocol for the hotspot detection server (DESIGN.md §15).
//
// Every message travels in one frame, CRC-checked like the scan journal's
// records (§13) so a torn or bit-flipped transport can never be mistaken
// for a request:
//
//   u32 magic "HSRV" | u16 version | u8 type | u8 flags
//   u32 payload_size | [u64 trace_id]            (version >= 2)
//   payload[payload_size] | u32 crc32
//
// Version 2 (the current version) appends a u64 trace_id to the fixed
// header: the server allocates one per inbound frame and echoes it on the
// response, so a request is correlatable across client logs, the flight
// recorder, and /tracez without touching any payload codec. The v2 CRC
// covers trace_id || payload (every post-header byte stays under the
// checksum); v1 frames keep the payload-only CRC and are still accepted —
// read_frame() speaks [kMinProtocolVersion, kProtocolVersion] and the
// server answers in whichever version the client spoke.
//
// All integers are little-endian host order (the server and its clients
// share a machine or an architecture; this repo never ships frames across
// endianness domains). payload_size is validated against kMaxPayloadBytes
// before any allocation, mirroring the checkpoint loader's hard caps.
//
// Requests carry bit-packed {0,1} rasters (LSB-first, ceil(grid^2/8) bytes
// per clip) — the same packing density the XNOR backend consumes — so a
// 128x128 clip costs 2 KiB on the wire instead of 64 KiB of floats.
//
// Decoding is transport-independent: read_frame() pulls bytes through a
// caller-supplied ReadFn, so unit tests exercise truncation and corruption
// against in-memory buffers, and the server/client wrap their sockets with
// the same code path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hotspot::serve {

inline constexpr std::uint32_t kFrameMagic = 0x56525348;  // "HSRV" LE
inline constexpr std::uint16_t kProtocolVersion = 2;
// Oldest version still decoded; v1 peers predate the trace_id header.
inline constexpr std::uint16_t kMinProtocolVersion = 1;
// Caps a frame's payload (16 MiB) so a corrupt or hostile length field can
// never drive an attacker-controlled allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 24;
// Caps the variable-length strings inside payloads.
inline constexpr std::size_t kMaxTenantBytes = 32;
inline constexpr std::size_t kMaxDetailBytes = 512;
inline constexpr std::size_t kMaxPathBytes = 4096;

enum class MessageType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kReject = 3,
  kPing = 4,
  kPong = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
  kSwapModel = 8,
  kSwapOk = 9,
  kShutdown = 10,
  kShutdownOk = 11,
};

// Why the server refused a request. Carried in Reject payloads so clients
// can distinguish "back off and retry" (kQueueFull) from "fix your request"
// (kBadRequest / kTooLarge) from "give up" (kShuttingDown).
enum class RejectReason : std::uint8_t {
  kQueueFull = 1,  // admission queue at capacity — load was shed
  kBadFrame = 2,   // unparseable or CRC-corrupt frame
  kTooLarge = 3,   // clip count or payload over the configured cap
  kShuttingDown = 4,
  kModelUnavailable = 5,  // no model registered yet
  kBadRequest = 6,        // grid mismatch, bad tenant, malformed payload
  kSwapFailed = 7,        // hot-swap load failed; previous model still live
};

const char* reject_reason_name(RejectReason reason);

enum class FrameStatus {
  kOk = 0,
  kEof,        // clean end of stream before any header byte
  kBadMagic,   // header does not start with "HSRV"
  kBadVersion, // protocol version this build does not speak
  kTooLarge,   // declared payload exceeds kMaxPayloadBytes
  kTruncated,  // stream ended mid-frame
  kCorrupt,    // payload CRC mismatch
};

const char* frame_status_name(FrameStatus status);

struct Frame {
  MessageType type = MessageType::kPing;
  std::uint8_t flags = 0;
  // Version the frame arrived in; responders mirror it so v1 clients are
  // never sent a header they cannot parse.
  std::uint16_t version = kProtocolVersion;
  // Request correlation id (v2+); 0 on v1 frames and unassigned requests.
  std::uint64_t trace_id = 0;
  std::vector<std::uint8_t> payload;
};

// Reads exactly `size` bytes into `out`; returns the number of bytes read
// (short only at end of stream / error).
using ReadFn =
    std::function<std::size_t(std::uint8_t* out, std::size_t size)>;

// Serializes one frame (header + payload + CRC footer). `version` must be
// in [kMinProtocolVersion, kProtocolVersion]; a v1 frame silently drops
// `trace_id` (v1 has nowhere to carry it).
std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint8_t flags = 0,
                                       std::uint64_t trace_id = 0,
                                       std::uint16_t version =
                                           kProtocolVersion);

// Reads and validates one frame. On kOk fills `out`; on any other status
// `out` is unspecified. A clean EOF before the first header byte is kEof;
// any mid-frame EOF is kTruncated.
FrameStatus read_frame(const ReadFn& read, Frame* out);

// --- Payload codecs -----------------------------------------------------
//
// Each payload struct has encode_* returning the payload bytes and a
// decode_* returning false on any structural violation (bad length, cap
// overflow, trailing bytes). Decoders never trust a length field without
// bounds-checking it against the remaining payload first.

struct PredictRequest {
  std::uint32_t request_id = 0;
  std::uint16_t grid = 0;   // clips are grid x grid {0,1} rasters
  std::string tenant;       // [A-Za-z0-9_.-], <= kMaxTenantBytes
  // count clips, each ceil(grid^2/8) bytes, LSB-first bit packing.
  std::uint16_t count = 0;
  std::vector<std::uint8_t> packed_clips;
};

struct PredictResponse {
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> labels;  // one byte per clip, 0 or 1
};

struct Reject {
  std::uint32_t request_id = 0;
  RejectReason reason = RejectReason::kBadRequest;
  std::string detail;  // <= kMaxDetailBytes, human-readable
};

struct SwapModel {
  std::uint32_t request_id = 0;
  std::uint16_t image_size = 0;
  std::string path;  // checkpoint archive to load, <= kMaxPathBytes
};

struct SwapOk {
  std::uint32_t request_id = 0;
  std::uint64_t version = 0;  // registry version now serving
};

// Bytes per clip at a given grid size.
std::size_t packed_clip_bytes(std::uint16_t grid);

// True when `tenant` is non-empty, within the cap, and matches
// [A-Za-z0-9_.-]+ (it becomes part of a metric name).
bool valid_tenant(const std::string& tenant);

std::vector<std::uint8_t> encode_predict_request(const PredictRequest& request);
bool decode_predict_request(const std::vector<std::uint8_t>& payload,
                            PredictRequest* out);

std::vector<std::uint8_t> encode_predict_response(
    const PredictResponse& response);
bool decode_predict_response(const std::vector<std::uint8_t>& payload,
                             PredictResponse* out);

std::vector<std::uint8_t> encode_reject(const Reject& reject);
bool decode_reject(const std::vector<std::uint8_t>& payload, Reject* out);

std::vector<std::uint8_t> encode_swap_model(const SwapModel& swap);
bool decode_swap_model(const std::vector<std::uint8_t>& payload,
                       SwapModel* out);

std::vector<std::uint8_t> encode_swap_ok(const SwapOk& ok);
bool decode_swap_ok(const std::vector<std::uint8_t>& payload, SwapOk* out);

// Ping/Pong carry an opaque u32 token echoed back verbatim.
std::vector<std::uint8_t> encode_token(std::uint32_t token);
bool decode_token(const std::vector<std::uint8_t>& payload,
                  std::uint32_t* out);

// Bit-packs `count` clips of grid*grid floats (values < 0.5 -> 0, else 1)
// into count * packed_clip_bytes(grid) bytes, LSB-first within each byte;
// each clip starts on a byte boundary so clips slice independently.
std::vector<std::uint8_t> pack_rasters(const float* pixels,
                                       std::size_t count, std::uint16_t grid);

// Inverse of pack_rasters: expands to {0.0f, 1.0f} pixels. `packed` must
// hold exactly count * packed_clip_bytes(grid) bytes.
std::vector<float> unpack_rasters(const std::vector<std::uint8_t>& packed,
                                  std::size_t count, std::uint16_t grid);

}  // namespace hotspot::serve
