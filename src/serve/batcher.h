// Cross-client micro-batching admission scheduler (DESIGN.md §15).
//
// The scan pipeline's double-buffered producer/consumer (§11) generalized
// to many producers: connection threads submit independent requests, a
// single worker thread drains the shared util::BoundedQueue and fuses
// adjacent requests into one classifier batch. The queue's capacity is
// measured in clips (weight = clips per request), so admission control
// bounds the real quantity — queued work — not the request count.
//
// Batch formation policy: the worker blocks for the first request, then
// keeps accepting requests until either the batch would exceed
// max_batch_clips or the formation deadline (batch_deadline measured from
// the first request's arrival at the worker) expires. A request is never
// split across batches, so every request's clips run under exactly one
// model version.
//
// Backpressure is load-shedding, not blocking: submit() uses try_push, and
// a full queue returns kShed immediately (the server turns that into a
// typed Reject(kQueueFull)). A server that cannot keep up tells clients so
// in bounded time instead of stacking latency.
//
// Bit-identity: the classifier's per-sample outputs are independent of
// batch composition (see BnnHotspotDetector::predict_batch), so fusing
// requests from different clients — in whatever order they arrived — yields
// exactly the labels each request would get alone. The concurrency never
// touches the math.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "obs/request_trace.h"
#include "tensor/tensor.h"
#include "util/bounded_queue.h"

namespace hotspot::serve {

struct BatcherConfig {
  // Largest fused batch, in clips. Requests above this are rejected with
  // kTooLarge before queuing (they could never be scheduled).
  std::size_t max_batch_clips = 64;
  // Admission queue capacity, in clips. Beyond this, submit() sheds.
  std::size_t max_queue_clips = 512;
  // How long the worker waits for more requests after the first one, before
  // shipping a partial batch. 0 ships every batch as soon as it has work.
  std::chrono::microseconds batch_deadline{2000};
};

enum class AdmitStatus {
  kOk = 0,
  kShed,      // queue full — load shed, client should back off
  kTooLarge,  // more clips than max_batch_clips, can never be batched
  kStopped,   // batcher is shutting down
};

// What one fused classifier call produced: per-clip labels plus the model
// version the batch resolved (0 when the classifier does not version, e.g.
// test lambdas). Implicitly constructible from a bare label vector so
// existing BatchFn lambdas returning std::vector<int> keep compiling.
struct BatchResult {
  std::vector<int> labels;
  std::uint64_t model_version = 0;

  BatchResult() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit lift.
  BatchResult(std::vector<int> batch_labels)
      : labels(std::move(batch_labels)) {}
  BatchResult(std::vector<int> batch_labels, std::uint64_t version)
      : labels(std::move(batch_labels)), model_version(version) {}
};

// Classifies a fused [n, 1, grid, grid] batch; returns one label per clip.
using BatchFn = std::function<BatchResult(const tensor::Tensor&)>;

class MicroBatcher {
 public:
  // `classify` runs on the worker thread, one fused batch at a time.
  MicroBatcher(const BatcherConfig& config, BatchFn classify);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Admits a [count, 1, grid, grid] request. On kOk, `result` receives a
  // future that resolves to the request's labels (or to the classifier's
  // exception). Any other status leaves `result` untouched. Never blocks.
  //
  // A non-null `trace` is filled in before the promise resolves:
  // queue_seconds (submit -> worker pop), batch_seconds (pop -> batch
  // ship), infer_seconds (the fused classifier call), and model_version —
  // and the serve.request.{queue,batch,infer}_seconds histograms observe
  // the same values. The promise/future pair orders the writes, so the
  // caller reads the trace safely after get() returns.
  AdmitStatus submit(tensor::Tensor images,
                     std::future<std::vector<int>>* result,
                     std::shared_ptr<obs::RequestTrace> trace = nullptr);

  // Stops admitting, drains queued requests through the classifier, joins
  // the worker. Idempotent.
  void stop();

  // Observability for tests: fused batches shipped and clips classified.
  std::uint64_t batches() const { return batches_.load(); }
  std::uint64_t clips() const { return clips_.load(); }

  // Live admission-queue depth in clips and its capacity (for /healthz).
  std::size_t queued_clips() const { return queue_.weight(); }
  std::size_t queue_capacity_clips() const { return config_.max_queue_clips; }

 private:
  struct Job {
    tensor::Tensor images;
    std::int64_t count = 0;
    std::promise<std::vector<int>> promise;
    std::shared_ptr<obs::RequestTrace> trace;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point popped;
  };

  void worker_loop();
  // Fuses `jobs` into one tensor, classifies, and slices the labels back
  // per job. On classifier failure every job gets the exception.
  void run_batch(std::vector<std::unique_ptr<Job>> jobs);

  BatcherConfig config_;
  BatchFn classify_;
  util::BoundedQueue<std::unique_ptr<Job>> queue_;
  std::thread worker_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> clips_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace hotspot::serve
