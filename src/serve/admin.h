// Admin/observability endpoint for the detection server (DESIGN.md §16).
//
// A second listener on 127.0.0.1 speaking just enough HTTP/1.0 for scrape
// tooling — no external HTTP library, request = one GET line + headers we
// ignore, response = status line, two headers, blank line, body, close.
// Routes:
//   /metrics  Prometheus text exposition of the global registry (SLO and
//             timeline gauges are refreshed immediately before the scrape).
//   /healthz  JSON liveness: model registry swap status + admission-queue
//             depth. 200 when a model is registered and the last swap
//             succeeded, 503 otherwise (load balancers key off the code).
//   /varz     Full JSON metrics snapshot with the run manifest embedded.
//   /tracez   Flight-recorder dump of recent completed requests
//             (?limit=N caps entries, ?dump=1 also writes the configured
//             dump file and reports the path/outcome).
//
// The endpoint is read-only by design: nothing served here mutates model
// state, so exposing it on an operator port cannot affect served labels.
// Scrapes run concurrently with serving; every handler reads through the
// same thread-safe surfaces the serve path writes (metrics registry,
// flight-recorder slot locks, registry mutex).
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace hotspot::serve {

class Server;

struct AdminConfig {
  // 0 binds an ephemeral port; bound_port() reports the real one.
  int port = 0;
  // Where /tracez?dump=1 writes the flight-recorder snapshot. Empty
  // disables the dump route (the JSON response still works).
  std::string flight_dump_path;
};

class AdminServer {
 public:
  // `server` must outlive the admin endpoint (the serve binary owns both
  // and stops the admin listener first).
  AdminServer(const AdminConfig& config, Server* server);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool start(std::string* error);
  void stop();
  int bound_port() const { return bound_port_; }

  // One routed response. Public so tests can exercise routing and payload
  // shape without sockets; serve-path state is read at call time.
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  Response handle(const std::string& method, const std::string& target);

 private:
  void accept_loop();
  void serve_connection(int fd);

  AdminConfig config_;
  Server* server_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
};

}  // namespace hotspot::serve
