#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace hotspot::serve {
namespace {

// Registry-resolved counters; resolved once, lock-free afterwards.
struct ServeCounters {
  obs::Counter& requests;
  obs::Counter& clips;
  obs::Counter& rejects;
  obs::Counter& bad_frames;
  obs::Counter& connections;
  obs::Histogram& request_seconds;

  static ServeCounters& get() {
    static ServeCounters counters = {
        obs::MetricsRegistry::global().counter("serve.requests"),
        obs::MetricsRegistry::global().counter("serve.clips"),
        obs::MetricsRegistry::global().counter("serve.rejects"),
        obs::MetricsRegistry::global().counter("serve.bad_frames"),
        obs::MetricsRegistry::global().counter("serve.connections"),
        obs::MetricsRegistry::global().histogram(
            "serve.request_seconds", obs::default_latency_buckets()),
    };
    return counters;
  }
};

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ReadFn socket_reader(int fd) {
  return [fd](std::uint8_t* out, std::size_t size) -> std::size_t {
    for (;;) {
      const ssize_t n = ::recv(fd, out, size, 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return n > 0 ? static_cast<std::size_t>(n) : 0;
    }
  };
}

}  // namespace

Server::Server(const ServerConfig& config, ModelRegistry* registry)
    : config_(config),
      registry_(registry),
      flight_recorder_(config.flight_recorder_capacity),
      slo_monitor_(config.slo) {
  HOTSPOT_CHECK(registry_ != nullptr);
  HOTSPOT_CHECK_LE(config_.max_clips_per_request,
                   config_.batcher.max_batch_clips)
      << "a request must fit in one batch";
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  HOTSPOT_CHECK(!running()) << "start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, config_.max_connections) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);
  // The batcher resolves the active model once per fused batch: every
  // request rides exactly one model version, and a hot-swap mid-load only
  // affects batches formed after the swap.
  batcher_ = std::make_unique<MicroBatcher>(
      config_.batcher, [this](const tensor::Tensor& images) {
        std::shared_ptr<ServableModel> model = registry_->active();
        HOTSPOT_CHECK(model != nullptr)
            << "batch scheduled with no active model";
        return BatchResult(model->predict(images), model->version());
      });
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [&] { return stopping_.load(); });
}

void Server::stop() {
  if (!running_.exchange(false)) {
    // Still wake any wait()ers on repeated stop.
    signal_stopping();
    return;
  }
  signal_stopping();
  // Unblock the accept loop and every connection reader: shutdown() makes
  // their blocking calls return without racing the fd close.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [fd, thread] : connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::pair<int, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& [fd, thread] : connections) {
    if (thread.joinable()) {
      thread.join();
    }
    ::close(fd);
  }
  if (batcher_ != nullptr) {
    batcher_->stop();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::signal_stopping() {
  {
    // Taken (and immediately dropped) so the store cannot slip between a
    // wait()er's predicate check and its sleep.
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket shut down — server stopping
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    ServeCounters::get().connections.increment();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap finished connections opportunistically so a long-lived server
    // does not accumulate joinable threads. A finished reader has shut
    // down its socket; join is immediate.
    if (static_cast<int>(connections_.size()) >= config_.max_connections) {
      for (auto it = connections_.begin(); it != connections_.end();) {
        // Readers exit by closing their read side; joinable() stays true
        // until joined, so track liveness via a zero-byte peek.
        char probe;
        const ssize_t n =
            ::recv(it->first, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n == 0) {  // peer closed and reader drained: safe to join
          it->second.join();
          ::close(it->first);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    connections_.emplace_back(fd, std::thread([this, fd] {
                                serve_connection(fd);
                              }));
  }
}

void Server::serve_connection(int fd) {
  const ReadFn reader = socket_reader(fd);
  for (;;) {
    Frame frame;
    const FrameStatus status = read_frame(reader, &frame);
    if (status == FrameStatus::kEof) {
      return;  // clean disconnect
    }
    if (status != FrameStatus::kOk) {
      // Framing is lost: a typed reject, then drop the connection. Reading
      // on would misparse garbage as requests.
      ServeCounters::get().bad_frames.increment();
      send_reject(fd, 0, RejectReason::kBadFrame, frame_status_name(status));
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    // Request id, allocated at frame decode: echoed on every response
    // header (v2 peers) and carried through the batcher into the flight
    // recorder, so one id correlates client logs, /tracez, and metrics. A
    // v2 client that supplied its own nonzero trace_id keeps it.
    const std::uint64_t trace_id =
        frame.trace_id != 0
            ? frame.trace_id
            : next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    const std::uint16_t peer_version = frame.version;
    if (stopping_.load(std::memory_order_acquire)) {
      send_reject(fd, 0, RejectReason::kShuttingDown, "server stopping",
                  peer_version, trace_id);
      return;
    }
    switch (frame.type) {
      case MessageType::kPing: {
        std::uint32_t token = 0;
        if (!decode_token(frame.payload, &token)) {
          if (!send_reject(fd, 0, RejectReason::kBadRequest, "bad ping",
                           peer_version, trace_id)) {
            return;
          }
          break;
        }
        if (!send_frame(fd, MessageType::kPong, encode_token(token),
                        peer_version, trace_id)) {
          return;
        }
        break;
      }
      case MessageType::kPredictRequest: {
        util::Stopwatch frame_timer;  // total latency starts at decode
        auto trace = std::make_shared<obs::RequestTrace>();
        trace->request_id = trace_id;
        trace->start_ns = flight_recorder_.relative_now_ns();
        PredictRequest request;
        if (!decode_predict_request(frame.payload, &request)) {
          ServeCounters::get().rejects.increment();
          trace->decode_seconds = frame_timer.seconds();
          finish_request(trace, obs::RequestOutcome::kRejected,
                         frame_timer.seconds());
          if (!send_reject(fd, 0, RejectReason::kBadRequest,
                           "malformed predict payload", peer_version,
                           trace_id)) {
            return;
          }
          break;
        }
        trace->client_request_id = request.request_id;
        trace->tenant = request.tenant;
        trace->clips = request.count;
        if (!handle_predict(fd, request, trace, peer_version)) {
          return;
        }
        break;
      }
      case MessageType::kSwapModel: {
        SwapModel swap;
        if (!decode_swap_model(frame.payload, &swap)) {
          if (!send_reject(fd, 0, RejectReason::kBadRequest, "bad swap",
                           peer_version, trace_id)) {
            return;
          }
          break;
        }
        const nn::LoadResult result =
            registry_->load(swap.path, swap.image_size);
        if (!result.ok()) {
          if (!send_reject(fd, swap.request_id, RejectReason::kSwapFailed,
                           result.message, peer_version, trace_id)) {
            return;
          }
          break;
        }
        SwapOk ok;
        ok.request_id = swap.request_id;
        ok.version = registry_->version();
        if (!send_frame(fd, MessageType::kSwapOk, encode_swap_ok(ok),
                        peer_version, trace_id)) {
          return;
        }
        break;
      }
      case MessageType::kStatsRequest: {
        // Refresh the derived gauges so a stats snapshot carries the same
        // live SLO/timeline state a /metrics scrape would.
        slo_monitor_.publish();
        obs::publish_timeline_metrics();
        const std::string json = obs::to_json(
            obs::MetricsRegistry::global().snapshot(),
            obs::collect_span_report());
        std::vector<std::uint8_t> payload(json.begin(), json.end());
        if (!send_frame(fd, MessageType::kStatsResponse, payload,
                        peer_version, trace_id)) {
          return;
        }
        break;
      }
      case MessageType::kShutdown: {
        send_frame(fd, MessageType::kShutdownOk, {}, peer_version, trace_id);
        // Flip stopping_ and wake wait(); the full stop() teardown (which
        // joins this very thread) must run outside it.
        signal_stopping();
        return;
      }
      default: {
        if (!send_reject(fd, 0, RejectReason::kBadRequest,
                         "unexpected message type", peer_version, trace_id)) {
          return;
        }
        break;
      }
    }
  }
}

bool Server::handle_predict(int fd, const PredictRequest& request,
                            const std::shared_ptr<obs::RequestTrace>& trace,
                            std::uint16_t peer_version) {
  ServeCounters& counters = ServeCounters::get();
  util::Stopwatch timer;
  const std::uint64_t trace_id = trace->request_id;
  // Every early exit closes the trace with the outcome it died on, so shed
  // and rejected traffic shows in /tracez and burns SLO budget too.
  const auto reject = [&](RejectReason reason, const std::string& detail,
                          obs::RequestOutcome outcome) {
    counters.rejects.increment();
    trace->total_seconds = timer.seconds();
    finish_request(trace, outcome, trace->total_seconds);
    return send_reject(fd, request.request_id, reason, detail, peer_version,
                       trace_id);
  };
  if (request.count == 0 ||
      static_cast<std::size_t>(request.count) > config_.max_clips_per_request) {
    return reject(RejectReason::kTooLarge,
                  "clip count outside [1, " +
                      std::to_string(config_.max_clips_per_request) + "]",
                  obs::RequestOutcome::kRejected);
  }
  std::shared_ptr<ServableModel> model = registry_->active();
  if (model == nullptr) {
    return reject(RejectReason::kModelUnavailable, "no model registered",
                  obs::RequestOutcome::kRejected);
  }
  if (request.grid != model->image_size()) {
    return reject(RejectReason::kBadRequest,
                  "grid " + std::to_string(request.grid) +
                      " does not match model image size " +
                      std::to_string(model->image_size()),
                  obs::RequestOutcome::kRejected);
  }
  const std::int64_t count = request.count;
  const std::int64_t grid = request.grid;
  std::vector<float> pixels =
      unpack_rasters(request.packed_clips, static_cast<std::size_t>(count),
                     request.grid);
  tensor::Tensor images(tensor::Shape{count, 1, grid, grid},
                        std::move(pixels));
  // Decode ends once the wire payload is a batch tensor.
  trace->decode_seconds = timer.seconds();
  std::future<std::vector<int>> pending;
  const AdmitStatus admitted =
      batcher_->submit(std::move(images), &pending, trace);
  if (admitted == AdmitStatus::kShed) {
    // serve.shed is incremented by the batcher itself.
    return reject(RejectReason::kQueueFull, "admission queue full",
                  obs::RequestOutcome::kShed);
  }
  if (admitted != AdmitStatus::kOk) {
    return reject(RejectReason::kShuttingDown, "batcher stopped",
                  obs::RequestOutcome::kRejected);
  }
  std::vector<int> labels;
  try {
    labels = pending.get();
  } catch (const std::exception& e) {
    return reject(RejectReason::kBadRequest,
                  std::string("classification failed: ") + e.what(),
                  obs::RequestOutcome::kError);
  }
  util::Stopwatch encode_timer;
  PredictResponse response;
  response.request_id = request.request_id;
  response.labels.reserve(labels.size());
  std::uint32_t hotspots = 0;
  for (const int label : labels) {
    const std::uint8_t bit = label != 0 ? 1 : 0;
    hotspots += bit;
    response.labels.push_back(bit);
  }
  const std::vector<std::uint8_t> payload = encode_predict_response(response);
  trace->encode_seconds = encode_timer.seconds();
  trace->hotspots = hotspots;
  trace->total_seconds = timer.seconds();
  counters.requests.increment();
  counters.clips.increment(static_cast<std::uint64_t>(count));
  counters.request_seconds.observe(trace->total_seconds);
  // Per-tenant accounting. Tenant names are validated to [A-Za-z0-9_.-] so
  // they are safe inside metric names.
  obs::MetricsRegistry::global()
      .counter("serve.tenant." + request.tenant + ".requests")
      .increment();
  obs::MetricsRegistry::global()
      .counter("serve.tenant." + request.tenant + ".clips")
      .increment(static_cast<std::uint64_t>(count));
  // Record before the response leaves: once the client sees its answer the
  // flight recorder and SLO window are guaranteed to include this request.
  finish_request(trace, obs::RequestOutcome::kOk, trace->total_seconds);
  return send_frame(fd, MessageType::kPredictResponse, payload, peer_version,
                    trace_id);
}

void Server::finish_request(const std::shared_ptr<obs::RequestTrace>& trace,
                            obs::RequestOutcome outcome,
                            double total_seconds) {
  trace->outcome = outcome;
  trace->total_seconds = total_seconds;
  static obs::Histogram& decode_seconds =
      obs::MetricsRegistry::global().histogram("serve.request.decode_seconds",
                                               obs::default_latency_buckets());
  static obs::Histogram& encode_seconds =
      obs::MetricsRegistry::global().histogram("serve.request.encode_seconds",
                                               obs::default_latency_buckets());
  decode_seconds.observe(trace->decode_seconds);
  if (outcome == obs::RequestOutcome::kOk) {
    encode_seconds.observe(trace->encode_seconds);
  }
  flight_recorder_.record(*trace);
  slo_monitor_.record(total_seconds, outcome == obs::RequestOutcome::kOk);
}

bool Server::send_frame(int fd, MessageType type,
                        const std::vector<std::uint8_t>& payload,
                        std::uint16_t peer_version, std::uint64_t trace_id) {
  // Respond in the version the peer spoke: a v1 client never sees a v2
  // header (and simply loses the trace_id echo).
  const std::vector<std::uint8_t> frame =
      encode_frame(type, payload, 0, trace_id, peer_version);
  return send_all(fd, frame.data(), frame.size());
}

bool Server::send_reject(int fd, std::uint32_t request_id,
                         RejectReason reason, const std::string& detail,
                         std::uint16_t peer_version, std::uint64_t trace_id) {
  Reject reject;
  reject.request_id = request_id;
  reject.reason = reason;
  reject.detail = detail.substr(0, kMaxDetailBytes);
  return send_frame(fd, MessageType::kReject, encode_reject(reject),
                    peer_version, trace_id);
}

}  // namespace hotspot::serve
