#include "serve/protocol.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"

namespace hotspot::serve {
namespace {

// Little-endian scalar append/read. The wire format is declared LE host
// order; these helpers keep the byte layout explicit instead of relying on
// struct memcpy.
void append_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

// Cursor over a payload; every read checks the remaining byte count, so a
// lying length field fails the decode instead of reading out of bounds.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* out) {
    if (remaining() < 1) {
      return false;
    }
    *out = bytes_[offset_++];
    return true;
  }

  bool u16(std::uint16_t* out) {
    if (remaining() < 2) {
      return false;
    }
    *out = static_cast<std::uint16_t>(bytes_[offset_] |
                                      (bytes_[offset_ + 1] << 8));
    offset_ += 2;
    return true;
  }

  bool u32(std::uint32_t* out) {
    if (remaining() < 4) {
      return false;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
    }
    offset_ += 4;
    *out = value;
    return true;
  }

  bool u64(std::uint64_t* out) {
    if (remaining() < 8) {
      return false;
    }
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    *out = value;
    return true;
  }

  bool string(std::size_t size, std::size_t cap, std::string* out) {
    if (size > cap || remaining() < size) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(bytes_.data()) + offset_, size);
    offset_ += size;
    return true;
  }

  bool bytes(std::size_t size, std::vector<std::uint8_t>* out) {
    if (remaining() < size) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<std::ptrdiff_t>(offset_),
                bytes_.begin() + static_cast<std::ptrdiff_t>(offset_ + size));
    offset_ += size;
    return true;
  }

  // Strict decoders require the payload fully consumed: trailing bytes mean
  // a version skew or corruption the CRC happened to miss.
  bool exhausted() const { return offset_ == bytes_.size(); }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

bool read_exact(const ReadFn& read, std::uint8_t* out, std::size_t size,
                bool* clean_eof) {
  std::size_t done = 0;
  while (done < size) {
    const std::size_t got = read(out + done, size - done);
    if (got == 0) {
      if (clean_eof != nullptr) {
        *clean_eof = done == 0;
      }
      return false;
    }
    done += got;
  }
  return true;
}

std::uint32_t read_u32_at(const std::uint8_t* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kBadFrame:
      return "bad_frame";
    case RejectReason::kTooLarge:
      return "too_large";
    case RejectReason::kShuttingDown:
      return "shutting_down";
    case RejectReason::kModelUnavailable:
      return "model_unavailable";
    case RejectReason::kBadRequest:
      return "bad_request";
    case RejectReason::kSwapFailed:
      return "swap_failed";
  }
  return "unknown";
}

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kEof:
      return "eof";
    case FrameStatus::kBadMagic:
      return "bad_magic";
    case FrameStatus::kBadVersion:
      return "bad_version";
    case FrameStatus::kTooLarge:
      return "too_large";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint8_t flags,
                                       std::uint64_t trace_id,
                                       std::uint16_t version) {
  HOTSPOT_CHECK_GE(version, kMinProtocolVersion);
  HOTSPOT_CHECK_LE(version, kProtocolVersion);
  std::vector<std::uint8_t> frame;
  frame.reserve(12 + 8 + payload.size() + 4);
  append_u32(frame, kFrameMagic);
  append_u16(frame, version);
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.push_back(flags);
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  util::Crc32 crc;
  if (version >= 2) {
    // v2 CRC covers trace_id || payload: every byte after the fixed header
    // stays under the checksum, so a bit flip anywhere past offset 12 is
    // detected exactly as in v1.
    const std::size_t trace_offset = frame.size();
    append_u64(frame, trace_id);
    crc.update(frame.data() + trace_offset, 8);
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  crc.update(payload.data(), payload.size());
  append_u32(frame, crc.value());
  return frame;
}

FrameStatus read_frame(const ReadFn& read, Frame* out) {
  std::uint8_t header[12];
  bool clean_eof = false;
  if (!read_exact(read, header, sizeof(header), &clean_eof)) {
    return clean_eof ? FrameStatus::kEof : FrameStatus::kTruncated;
  }
  if (read_u32_at(header) != kFrameMagic) {
    return FrameStatus::kBadMagic;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(header[4] | (header[5] << 8));
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return FrameStatus::kBadVersion;
  }
  out->version = version;
  out->type = static_cast<MessageType>(header[6]);
  out->flags = header[7];
  const std::uint32_t payload_size = read_u32_at(header + 8);
  if (payload_size > kMaxPayloadBytes) {
    return FrameStatus::kTooLarge;
  }
  util::Crc32 crc;
  out->trace_id = 0;
  if (version >= 2) {
    std::uint8_t trace_bytes[8];
    if (!read_exact(read, trace_bytes, sizeof(trace_bytes), nullptr)) {
      return FrameStatus::kTruncated;
    }
    std::uint64_t trace_id = 0;
    for (int i = 0; i < 8; ++i) {
      trace_id |= static_cast<std::uint64_t>(trace_bytes[i]) << (8 * i);
    }
    out->trace_id = trace_id;
    crc.update(trace_bytes, sizeof(trace_bytes));
  }
  out->payload.resize(payload_size);
  if (payload_size > 0 &&
      !read_exact(read, out->payload.data(), payload_size, nullptr)) {
    return FrameStatus::kTruncated;
  }
  std::uint8_t footer[4];
  if (!read_exact(read, footer, sizeof(footer), nullptr)) {
    return FrameStatus::kTruncated;
  }
  crc.update(out->payload.data(), out->payload.size());
  if (read_u32_at(footer) != crc.value()) {
    return FrameStatus::kCorrupt;
  }
  return FrameStatus::kOk;
}

std::size_t packed_clip_bytes(std::uint16_t grid) {
  const std::size_t pixels =
      static_cast<std::size_t>(grid) * static_cast<std::size_t>(grid);
  return (pixels + 7) / 8;
}

bool valid_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantBytes) {
    return false;
  }
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> encode_predict_request(
    const PredictRequest& request) {
  std::vector<std::uint8_t> payload;
  payload.reserve(9 + request.tenant.size() + request.packed_clips.size());
  append_u32(payload, request.request_id);
  append_u16(payload, request.grid);
  append_u16(payload, request.count);
  payload.push_back(static_cast<std::uint8_t>(request.tenant.size()));
  payload.insert(payload.end(), request.tenant.begin(), request.tenant.end());
  payload.insert(payload.end(), request.packed_clips.begin(),
                 request.packed_clips.end());
  return payload;
}

bool decode_predict_request(const std::vector<std::uint8_t>& payload,
                            PredictRequest* out) {
  Reader reader(payload);
  std::uint8_t tenant_len = 0;
  if (!reader.u32(&out->request_id) || !reader.u16(&out->grid) ||
      !reader.u16(&out->count) || !reader.u8(&tenant_len) ||
      !reader.string(tenant_len, kMaxTenantBytes, &out->tenant)) {
    return false;
  }
  if (out->grid == 0 || !valid_tenant(out->tenant)) {
    return false;
  }
  const std::size_t clip_bytes =
      packed_clip_bytes(out->grid) * static_cast<std::size_t>(out->count);
  if (!reader.bytes(clip_bytes, &out->packed_clips)) {
    return false;
  }
  return reader.exhausted();
}

std::vector<std::uint8_t> encode_predict_response(
    const PredictResponse& response) {
  std::vector<std::uint8_t> payload;
  payload.reserve(6 + response.labels.size());
  append_u32(payload, response.request_id);
  append_u16(payload, static_cast<std::uint16_t>(response.labels.size()));
  payload.insert(payload.end(), response.labels.begin(),
                 response.labels.end());
  return payload;
}

bool decode_predict_response(const std::vector<std::uint8_t>& payload,
                             PredictResponse* out) {
  Reader reader(payload);
  std::uint16_t count = 0;
  if (!reader.u32(&out->request_id) || !reader.u16(&count) ||
      !reader.bytes(count, &out->labels)) {
    return false;
  }
  for (const std::uint8_t label : out->labels) {
    if (label > 1) {
      return false;
    }
  }
  return reader.exhausted();
}

std::vector<std::uint8_t> encode_reject(const Reject& reject) {
  std::vector<std::uint8_t> payload;
  payload.reserve(7 + reject.detail.size());
  append_u32(payload, reject.request_id);
  payload.push_back(static_cast<std::uint8_t>(reject.reason));
  append_u16(payload, static_cast<std::uint16_t>(reject.detail.size()));
  payload.insert(payload.end(), reject.detail.begin(), reject.detail.end());
  return payload;
}

bool decode_reject(const std::vector<std::uint8_t>& payload, Reject* out) {
  Reader reader(payload);
  std::uint8_t reason = 0;
  std::uint16_t detail_len = 0;
  if (!reader.u32(&out->request_id) || !reader.u8(&reason) ||
      !reader.u16(&detail_len) ||
      !reader.string(detail_len, kMaxDetailBytes, &out->detail)) {
    return false;
  }
  if (reason < 1 || reason > 7) {
    return false;
  }
  out->reason = static_cast<RejectReason>(reason);
  return reader.exhausted();
}

std::vector<std::uint8_t> encode_swap_model(const SwapModel& swap) {
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + swap.path.size());
  append_u32(payload, swap.request_id);
  append_u16(payload, swap.image_size);
  append_u16(payload, static_cast<std::uint16_t>(swap.path.size()));
  payload.insert(payload.end(), swap.path.begin(), swap.path.end());
  return payload;
}

bool decode_swap_model(const std::vector<std::uint8_t>& payload,
                       SwapModel* out) {
  Reader reader(payload);
  std::uint16_t path_len = 0;
  if (!reader.u32(&out->request_id) || !reader.u16(&out->image_size) ||
      !reader.u16(&path_len) ||
      !reader.string(path_len, kMaxPathBytes, &out->path)) {
    return false;
  }
  if (out->image_size == 0 || out->path.empty()) {
    return false;
  }
  return reader.exhausted();
}

std::vector<std::uint8_t> encode_swap_ok(const SwapOk& ok) {
  std::vector<std::uint8_t> payload;
  payload.reserve(12);
  append_u32(payload, ok.request_id);
  append_u64(payload, ok.version);
  return payload;
}

bool decode_swap_ok(const std::vector<std::uint8_t>& payload, SwapOk* out) {
  Reader reader(payload);
  return reader.u32(&out->request_id) && reader.u64(&out->version) &&
         reader.exhausted();
}

std::vector<std::uint8_t> encode_token(std::uint32_t token) {
  std::vector<std::uint8_t> payload;
  append_u32(payload, token);
  return payload;
}

bool decode_token(const std::vector<std::uint8_t>& payload,
                  std::uint32_t* out) {
  Reader reader(payload);
  return reader.u32(out) && reader.exhausted();
}

std::vector<std::uint8_t> pack_rasters(const float* pixels, std::size_t count,
                                       std::uint16_t grid) {
  const std::size_t per_clip = packed_clip_bytes(grid);
  const std::size_t pixels_per_clip =
      static_cast<std::size_t>(grid) * static_cast<std::size_t>(grid);
  std::vector<std::uint8_t> packed(per_clip * count, 0);
  for (std::size_t clip = 0; clip < count; ++clip) {
    const float* src = pixels + clip * pixels_per_clip;
    std::uint8_t* dst = packed.data() + clip * per_clip;
    for (std::size_t i = 0; i < pixels_per_clip; ++i) {
      if (src[i] >= 0.5f) {
        dst[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
    }
  }
  return packed;
}

std::vector<float> unpack_rasters(const std::vector<std::uint8_t>& packed,
                                  std::size_t count, std::uint16_t grid) {
  const std::size_t per_clip = packed_clip_bytes(grid);
  const std::size_t pixels_per_clip =
      static_cast<std::size_t>(grid) * static_cast<std::size_t>(grid);
  std::vector<float> pixels(pixels_per_clip * count, 0.0f);
  for (std::size_t clip = 0; clip < count; ++clip) {
    const std::uint8_t* src = packed.data() + clip * per_clip;
    float* dst = pixels.data() + clip * pixels_per_clip;
    for (std::size_t i = 0; i < pixels_per_clip; ++i) {
      dst[i] = (src[i / 8] >> (i % 8)) & 1u ? 1.0f : 0.0f;
    }
  }
  return pixels;
}

}  // namespace hotspot::serve
