// Model registry with atomic hot-swap (DESIGN.md §15).
//
// The registry owns the servable model and publishes it through a
// shared_ptr: load() builds and validates the *new* model completely off to
// the side (CRC-checked HSPT archive load, §9), then swaps the pointer
// under a mutex. Readers that resolved active() before the swap keep the
// old model alive until their batch finishes; readers after the swap see
// the new one. There is no torn state to observe — a request runs entirely
// on one version — and a failed load leaves the previous model serving.
//
// Restartability: every successful load records {path, image_size, version}
// in a JSON state file published with the same tmp+fsync+rename discipline
// as checkpoints, so a killed-and-restarted server calls restore() and
// resumes serving the model it was serving, without the operator replaying
// the registration.
//
// ServableModel::predict is serialized by an internal mutex (the module
// chain's activation caches are shared scratch; see
// BnnHotspotDetector::predict_batch). The server's single batcher worker
// never contends; the mutex is there so direct multi-threaded use — the
// hot-swap hammer test, a future multi-worker server — stays correct.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/brnn.h"
#include "nn/serialize.h"
#include "tensor/tensor.h"

namespace hotspot::serve {

class ServableModel {
 public:
  // Builds the architecture for `image_size` (BrnnConfig::compact) and
  // loads `path` into it. Check load_result() before serving.
  ServableModel(std::string path, std::int64_t image_size,
                std::uint64_t version);

  const nn::LoadResult& load_result() const { return load_result_; }
  const std::string& path() const { return path_; }
  std::int64_t image_size() const { return image_size_; }
  std::uint64_t version() const { return version_; }

  // Labels for a [n, 1, ls, ls] batch on the packed backend. Thread-safe
  // (serialized internally); bit-identical for a given weight version
  // regardless of caller interleaving.
  std::vector<int> predict(const tensor::Tensor& images);

 private:
  std::string path_;
  std::int64_t image_size_;
  std::uint64_t version_;
  nn::LoadResult load_result_;
  std::unique_ptr<core::BrnnModel> model_;
  std::mutex predict_mutex_;
};

class ModelRegistry {
 public:
  // `state_path` is where successful loads are recorded for restart
  // recovery; empty disables persistence.
  explicit ModelRegistry(std::string state_path = "");

  // Loads `path` into a fresh model for `image_size` clips. On success the
  // new model is published atomically (version bumped) and the state file
  // rewritten. On failure the previously active model keeps serving and
  // the state file is untouched.
  nn::LoadResult load(const std::string& path, std::int64_t image_size);

  // Re-loads the model recorded in the state file. kMissing when no state
  // file exists (a fresh deployment).
  nn::LoadResult restore();

  // The currently published model; nullptr before the first successful
  // load. Callers hold the returned shared_ptr for the duration of a batch
  // so a concurrent swap can never free a model mid-forward.
  std::shared_ptr<ServableModel> active() const;

  // Version of the active model; 0 before the first load. Monotonic across
  // swaps within one process lifetime, and resumes from the persisted
  // version after a restart.
  std::uint64_t version() const;

  // Health surface for the admin endpoint: the last load/swap attempt and
  // what is serving now. `last_ok` is true before any attempt (an idle
  // registry is not unhealthy, only empty).
  struct SwapStatus {
    bool model_registered = false;
    std::uint64_t active_version = 0;
    std::string active_path;
    std::int64_t image_size = 0;
    bool last_ok = true;
    std::string last_error;  // load_result message of the last failure
    std::uint64_t failures = 0;
  };
  SwapStatus swap_status() const;

  const std::string& state_path() const { return state_path_; }

 private:
  bool write_state(const ServableModel& model, std::string* error) const;

  std::string state_path_;
  mutable std::mutex mutex_;
  std::shared_ptr<ServableModel> active_;
  std::uint64_t next_version_ = 1;
  bool last_swap_ok_ = true;
  std::string last_swap_error_;
  std::uint64_t swap_failures_ = 0;
};

}  // namespace hotspot::serve
