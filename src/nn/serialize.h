// Crash-safe binary checkpoint format for model and training state.
//
// Archive layout (format version 2, little-endian host order):
//
//   u32 magic "HSPT" | u32 version | u32 tensor_count | u32 blob_count
//   tensor_count x { u32 name_len, name, u32 rank, i64 extents[rank],
//                    f32 data[numel] }
//   blob_count   x { u32 name_len, name, u64 byte_count, bytes }
//   u32 crc32 over every preceding byte (IEEE 802.3 / zlib polynomial)
//
// Robustness guarantees:
//   * Every length / count / extent read from disk is validated against hard
//     caps AND the actual file size before any allocation or read — a
//     truncated or bit-flipped file yields a typed error, never an attacker-
//     controlled allocation or an abort.
//   * The CRC footer distinguishes bit rot in payload bytes from genuine
//     data, so a flipped weight bit is kCorrupt, not a silently-wrong model.
//   * Writes are atomic: the archive is written to "<path>.tmp", flushed,
//     fsync'ed, and renamed over the target. A crash (or injected fault, see
//     util/fault_injection.h) at any point leaves the previous file — or no
//     file — fully intact; readers can never observe a torn archive at
//     `path`.
//   * Loading is strict: tensor names, order, and shapes must match the
//     target model, making silent architecture drift impossible. The blob
//     section carries non-tensor training state (optimizer counters, RNG
//     streams); model-only loads skip it, so a deployment can read just the
//     weights out of a full training checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"

namespace hotspot::nn {

// Why an I/O operation failed; lets callers distinguish "no checkpoint yet"
// from "checkpoint damaged" from "wrong architecture".
enum class IoStatus {
  kOk = 0,
  kMissing,        // file does not exist / cannot be opened
  kTruncated,      // file ends before the data it declares
  kCorrupt,        // CRC mismatch, implausible field, or trailing bytes
  kBadFormat,      // not an HSPT archive / unsupported version
  kShapeMismatch,  // tensor names/shapes do not match the target model
  kWriteFailed,    // write, flush, or rename failed (or was fault-injected)
};

const char* io_status_name(IoStatus status);

// Typed result for checkpoint I/O. Converts to bool (true = success) so
// existing `if (!load_checkpoint(...))` call sites keep working.
struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::string message;  // human-readable detail for logs / CLI errors

  bool ok() const { return status == IoStatus::kOk; }
  explicit operator bool() const { return ok(); }

  static IoResult success() { return {}; }
  static IoResult failure(IoStatus status, std::string message) {
    return {status, std::move(message)};
  }
};

using LoadResult = IoResult;
using SaveResult = IoResult;

// An opaque named byte payload stored alongside tensors (optimizer moments
// metadata, RNG state, epoch counters, ...).
struct NamedBlob {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

// Writes tensors + blobs to `path` atomically (tmp + flush + fsync +
// rename).
SaveResult save_archive(const std::string& path,
                        const std::vector<NamedTensor>& tensors,
                        const std::vector<NamedBlob>& blobs);

// Reads an archive into `tensors` (names/order/shapes must match the start
// of the file's tensor section). When `blobs` is non-null this is a
// full-state load: the tensor count must match exactly and the blob
// entries' names declare the expected blob section, whose `bytes` are
// filled. When null this is a model-only load: validated trailing tensors
// (a training snapshot's optimizer moments) and the blob section are
// skipped, but still CRC-verified. On any failure the tensors may be
// partially written — callers must treat the model as unusable unless ok().
LoadResult load_archive(const std::string& path,
                        const std::vector<NamedTensor>& tensors,
                        std::vector<NamedBlob>* blobs);

// Tensor-only convenience wrappers (blob section empty on save, ignored on
// load).
SaveResult save_tensors(const std::string& path,
                        const std::vector<NamedTensor>& tensors);
LoadResult load_tensors(const std::string& path,
                        const std::vector<NamedTensor>& tensors);

// Writes / reads the module's state (collect_state). load_checkpoint also
// accepts full training checkpoints, reading just the model tensors.
SaveResult save_checkpoint(const std::string& path, Module& module);
LoadResult load_checkpoint(const std::string& path, Module& module);

}  // namespace hotspot::nn
