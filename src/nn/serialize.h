// Binary checkpoint format for model state.
//
// Layout: magic "HSPT" + version, tensor count, then for each tensor its
// name, shape, and raw float32 data (little-endian host order). Loading is
// strict: names, order, and shapes must match the target model, which makes
// silent architecture drift impossible.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace hotspot::nn {

// Writes the module's state (collect_state) to `path`. Returns false on I/O
// failure.
bool save_checkpoint(const std::string& path, Module& module);

// Reads a checkpoint written by save_checkpoint into the module. Returns
// false on I/O failure or on any name/shape mismatch.
bool load_checkpoint(const std::string& path, Module& module);

// Lower-level entry points used by the model registry and tests.
bool save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors);
bool load_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors);

}  // namespace hotspot::nn
