// Batch normalization over NCHW activations (Ioffe & Szegedy).
//
// In the paper's BNN block (Fig. 3) batch norm runs immediately before the
// binarizing layer: centering the pre-activation distribution halves the
// information lost by sign(), which bench_fig3_block quantifies.
#pragma once

#include "nn/module.h"

namespace hotspot::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  void collect_state(const std::string& prefix,
                     std::vector<NamedTensor>& out) override;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  // Direct access for serialization.
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }
  std::int64_t channels() const { return channels_; }
  float momentum() const { return momentum_; }
  float epsilon() const { return epsilon_; }

  // Per-channel 1/sqrt(var + eps) exactly as the inference forward computes
  // it, including the negative-variance clamp. The graph layer's
  // BN->Binarize fold evaluates its thresholds against these floats, so
  // folded and unfused paths normalize with bit-identical factors.
  Tensor inference_inv_std() const;

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward caches for backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [C]
  tensor::Shape cached_input_shape_;
};

}  // namespace hotspot::nn
