#include "nn/conv_layer.h"

#include <sstream>

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace hotspot::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool with_bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      spec_{kernel, kernel, stride, pad},
      with_bias_(with_bias) {
  HOTSPOT_CHECK_GT(in_channels, 0);
  HOTSPOT_CHECK_GT(out_channels, 0);
  const tensor::Shape weight_shape{out_channels, in_channels, kernel, kernel};
  const auto [fan_in, fan_out] = compute_fans(weight_shape);
  weight_ = Parameter("weight",
                      xavier_uniform(weight_shape, fan_in, fan_out, rng));
  if (with_bias_) {
    bias_ = Parameter("bias", Tensor({out_channels}));
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  // The input copy is only needed by backward(); inference-mode forwards
  // (e.g. the float baselines' predict sweeps) skip it.
  if (training()) {
    cached_input_ = input;
  }
  return tensor::conv2d(input, weight_.value,
                        with_bias_ ? &bias_.value : nullptr, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;
  tensor::conv2d_backward(cached_input_, weight_.value, grad_output, spec_,
                          &grad_input, &grad_weight,
                          with_bias_ ? &grad_bias : nullptr);
  tensor::add_inplace(weight_.grad, grad_weight);
  if (with_bias_) {
    tensor::add_inplace(bias_.grad, grad_bias);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (with_bias_) {
    params.push_back(&bias_);
  }
  return params;
}

std::string Conv2d::name() const {
  std::ostringstream out;
  out << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", k"
      << spec_.kernel_h << ", s" << spec_.stride << ", p" << spec_.pad << ")";
  return out.str();
}

}  // namespace hotspot::nn
