#include "nn/loss.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace hotspot::nn {

double SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                    const tensor::Tensor& targets) {
  return tensor::softmax_cross_entropy(logits, targets, &grad_);
}

tensor::Tensor make_targets(const std::vector<int>& labels,
                            float bias_epsilon) {
  HOTSPOT_CHECK(bias_epsilon >= 0.0f && bias_epsilon < 0.5f)
      << "bias epsilon " << bias_epsilon;
  tensor::Tensor targets(
      {static_cast<std::int64_t>(labels.size()), 2});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int label = labels[i];
    HOTSPOT_CHECK(label == 0 || label == 1) << "label " << label;
    const auto row = static_cast<std::int64_t>(i);
    if (label == 1) {
      targets.at2(row, 0) = 0.0f;
      targets.at2(row, 1) = 1.0f;
    } else {
      targets.at2(row, 0) = 1.0f - bias_epsilon;
      targets.at2(row, 1) = bias_epsilon;
    }
  }
  return targets;
}

}  // namespace hotspot::nn
