#include "nn/linear_layer.h"

#include <sstream>

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace hotspot::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool with_bias, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias) {
  HOTSPOT_CHECK_GT(in_features, 0);
  HOTSPOT_CHECK_GT(out_features, 0);
  weight_ = Parameter("weight",
                      xavier_uniform({out_features, in_features}, in_features,
                                     out_features, rng));
  if (with_bias_) {
    bias_ = Parameter("bias", Tensor({out_features}));
  }
}

Tensor Linear::forward(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 2);
  HOTSPOT_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  Tensor output = tensor::matmul(input, tensor::transpose2d(weight_.value));
  if (with_bias_) {
    for (std::int64_t r = 0; r < output.dim(0); ++r) {
      for (std::int64_t c = 0; c < out_features_; ++c) {
        output.at2(r, c) += bias_.value[c];
      }
    }
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  HOTSPOT_CHECK_EQ(grad_output.rank(), 2);
  HOTSPOT_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW += g^T x ; dx = g W ; db += column sums of g.
  tensor::add_inplace(
      weight_.grad,
      tensor::matmul(tensor::transpose2d(grad_output), cached_input_));
  if (with_bias_) {
    for (std::int64_t c = 0; c < out_features_; ++c) {
      double total = 0.0;
      for (std::int64_t r = 0; r < grad_output.dim(0); ++r) {
        total += static_cast<double>(grad_output.at2(r, c));
      }
      bias_.grad[c] += static_cast<float>(total);
    }
  }
  return tensor::matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (with_bias_) {
    params.push_back(&bias_);
  }
  return params;
}

std::string Linear::name() const {
  std::ostringstream out;
  out << "Linear(" << in_features_ << "->" << out_features_ << ")";
  return out.str();
}

}  // namespace hotspot::nn
