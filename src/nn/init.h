// Weight initialization schemes (Sec. 3.4.2 uses Xavier).
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace hotspot::nn {

// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in,
                              std::int64_t fan_out, util::Rng& rng);

// Kaiming/He normal: N(0, sqrt(2 / fan_in)); provided for the float CNN
// baseline.
tensor::Tensor kaiming_normal(tensor::Shape shape, std::int64_t fan_in,
                              util::Rng& rng);

// Fan-in / fan-out for a conv weight [Cout, Cin, kh, kw] or linear
// [out, in].
std::pair<std::int64_t, std::int64_t> compute_fans(const tensor::Shape& shape);

}  // namespace hotspot::nn
