// Module: the building block of every network in this library.
//
// Each module owns its parameters and caches whatever its backward pass
// needs during forward. backward() must be called with the gradient of the
// loss w.r.t. the module's output, after the matching forward(); it
// accumulates into parameter .grad fields and returns the gradient w.r.t.
// the input. Gradients are validated against finite differences in
// tests/nn/gradient_check_test.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::nn {

using tensor::Tensor;

// A named view of a tensor owned elsewhere; the unit of (de)serialization.
struct NamedTensor {
  std::string name;
  Tensor* value = nullptr;
};

// A trainable tensor together with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  // Incremented on every mutation of `value` (optimizer steps, checkpoint
  // loads). Consumers that derive state from the weights — e.g. the packed
  // BitMatrix filter cache in BinaryConv2d — key their cache on this counter
  // instead of re-deriving per call.
  std::uint64_t version = 0;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
  void bump_version() { ++version; }
};

class Module {
 public:
  // Inherited alias so subclasses in other namespaces can spell `Tensor`.
  using Tensor = tensor::Tensor;

  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  // Computes the output for `input`, caching state for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  // Propagates `grad_output` (d loss / d output) back through the cached
  // forward state, accumulating parameter gradients; returns
  // d loss / d input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // All trainable parameters, in a stable order.
  virtual std::vector<Parameter*> parameters() { return {}; }

  // Layer type plus salient dimensions, for architecture tables.
  virtual std::string name() const = 0;

  // Training vs. inference mode (batch norm statistics, dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad() {
    for (Parameter* param : parameters()) {
      param->zero_grad();
    }
  }

  // Appends every tensor that defines the module's learned state (parameters
  // plus non-trainable buffers such as batch-norm running statistics) under
  // `prefix`. Containers recurse with indexed prefixes so names are stable.
  virtual void collect_state(const std::string& prefix,
                             std::vector<NamedTensor>& out);

  // Total trainable scalar count.
  std::int64_t parameter_count();

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace hotspot::nn
