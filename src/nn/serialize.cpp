#include "nn/serialize.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace hotspot::nn {
namespace {

constexpr std::uint32_t kMagic = 0x48535054;  // "HSPT"
constexpr std::uint32_t kFormatVersion = 2;

// Hard sanity caps. A well-formed checkpoint is nowhere near these; a file
// that claims to exceed them is damaged or hostile, and we reject it before
// allocating anything it asked for.
constexpr std::uint32_t kMaxSectionEntries = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 4096;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 36;

// magic + version + tensor_count + blob_count + crc footer.
constexpr std::int64_t kMinArchiveBytes = 20;

// HSPT framing over the shared atomic-publication machinery
// (util::AtomicFileWriter): the archive is written to "<path>.tmp" and
// finalize() publishes it with flush + fsync + atomic rename. Any earlier
// exit (error, injected fault, destructor) leaves the target path untouched
// and removes the temp file.
class ArchiveWriter {
 public:
  explicit ArchiveWriter(std::string path)
      : writer_(std::move(path),
                util::AtomicFileWriter::FaultPoints{
                    util::FaultPoint::kCheckpointWrite,
                    util::FaultPoint::kCheckpointFlush,
                    util::FaultPoint::kCheckpointRename}) {}

  bool ok() const { return writer_.ok(); }

  bool write(const void* data, std::size_t size) {
    return writer_.write(data, size);
  }

  bool write_u32(std::uint32_t value) { return writer_.write_u32(value); }
  bool write_u64(std::uint64_t value) { return writer_.write_u64(value); }
  bool write_i64(std::int64_t value) { return writer_.write_i64(value); }

  bool write_string(const std::string& text) {
    return write_u32(static_cast<std::uint32_t>(text.size())) &&
           write(text.data(), text.size());
  }

  SaveResult finalize() {
    // The footer is the CRC of everything before it.
    const std::uint32_t crc = writer_.crc();
    if (!write(&crc, sizeof(crc)) || !writer_.finalize()) {
      return fail();
    }
    return SaveResult::success();
  }

  SaveResult fail() const {
    return SaveResult::failure(IoStatus::kWriteFailed, writer_.error());
  }

 private:
  util::AtomicFileWriter writer_;
};

// Sequential reader over the payload (everything before the CRC footer).
// Every read is bounds-checked against the real file size, so no length
// field from disk can drive a read — or an allocation — past the data that
// actually exists.
class ArchiveReader {
 public:
  explicit ArchiveReader(const std::string& path)
      : file_size_(util::file_size_of(path)) {
    if (file_size_ >= 0) {
      in_.open(path, std::ios::binary);
    }
    payload_size_ = file_size_ < kMinArchiveBytes
                        ? 0
                        : file_size_ - static_cast<std::int64_t>(sizeof(std::uint32_t));
  }

  bool opened() const { return file_size_ >= 0 && in_.is_open(); }
  std::int64_t file_size() const { return file_size_; }
  std::int64_t remaining() const { return payload_size_ - consumed_; }

  bool read(void* out, std::size_t size) {
    if (static_cast<std::int64_t>(size) > remaining()) {
      return false;
    }
    in_.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
    if (!in_.good()) {
      return false;
    }
    crc_.update(out, size);
    consumed_ += static_cast<std::int64_t>(size);
    return true;
  }

  bool read_u32(std::uint32_t& value) { return read(&value, sizeof(value)); }
  bool read_u64(std::uint64_t& value) { return read(&value, sizeof(value)); }
  bool read_i64(std::int64_t& value) { return read(&value, sizeof(value)); }

  // Consumes `size` bytes without storing them (still checksummed).
  bool skip(std::int64_t size) {
    char scratch[4096];
    while (size > 0) {
      const auto chunk = static_cast<std::size_t>(
          size < static_cast<std::int64_t>(sizeof(scratch))
              ? size
              : static_cast<std::int64_t>(sizeof(scratch)));
      if (!read(scratch, chunk)) {
        return false;
      }
      size -= static_cast<std::int64_t>(chunk);
    }
    return true;
  }

  // Reads the footer, which sits outside the checksummed payload.
  bool read_footer(std::uint32_t& value) {
    in_.read(reinterpret_cast<char*>(&value), sizeof(value));
    return in_.good();
  }

  std::uint32_t crc() const { return crc_.value(); }

 private:
  std::int64_t file_size_;
  std::int64_t payload_size_ = 0;
  std::int64_t consumed_ = 0;
  std::ifstream in_;
  util::Crc32 crc_;
};

LoadResult fail(IoStatus status, const std::string& path,
                const std::string& detail) {
  return LoadResult::failure(status, path + ": " + detail);
}

// Reads a length-prefixed string, validating the length against both the
// name cap and the bytes actually left in the file before resizing.
LoadResult read_name(ArchiveReader& reader, const std::string& path,
                     std::string& text) {
  std::uint32_t length = 0;
  if (!reader.read_u32(length)) {
    return fail(IoStatus::kTruncated, path, "file ends inside a name length");
  }
  if (length > kMaxNameLength) {
    std::ostringstream detail;
    detail << "name length " << length << " exceeds cap " << kMaxNameLength;
    return fail(IoStatus::kCorrupt, path, detail.str());
  }
  if (static_cast<std::int64_t>(length) > reader.remaining()) {
    return fail(IoStatus::kTruncated, path, "file ends inside a name");
  }
  text.resize(length);
  if (!reader.read(text.data(), length)) {
    return fail(IoStatus::kTruncated, path, "file ends inside a name");
  }
  return LoadResult::success();
}

}  // namespace

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kMissing:
      return "missing";
    case IoStatus::kTruncated:
      return "truncated";
    case IoStatus::kCorrupt:
      return "corrupt";
    case IoStatus::kBadFormat:
      return "bad-format";
    case IoStatus::kShapeMismatch:
      return "shape-mismatch";
    case IoStatus::kWriteFailed:
      return "write-failed";
  }
  return "unknown";
}

SaveResult save_archive(const std::string& path,
                        const std::vector<NamedTensor>& tensors,
                        const std::vector<NamedBlob>& blobs) {
  HOTSPOT_CHECK(tensors.size() <= kMaxSectionEntries);
  HOTSPOT_CHECK(blobs.size() <= kMaxSectionEntries);
  ArchiveWriter writer(path);
  if (!writer.ok()) {
    return writer.fail();
  }
  if (!writer.write_u32(kMagic) || !writer.write_u32(kFormatVersion) ||
      !writer.write_u32(static_cast<std::uint32_t>(tensors.size())) ||
      !writer.write_u32(static_cast<std::uint32_t>(blobs.size()))) {
    return writer.fail();
  }
  for (const auto& entry : tensors) {
    HOTSPOT_CHECK(entry.value != nullptr) << "null tensor '" << entry.name << "'";
    HOTSPOT_CHECK(entry.name.size() <= kMaxNameLength);
    const auto& shape = entry.value->shape();
    HOTSPOT_CHECK(shape.size() <= kMaxRank)
        << "rank " << shape.size() << " for '" << entry.name << "'";
    if (!writer.write_string(entry.name) ||
        !writer.write_u32(static_cast<std::uint32_t>(shape.size()))) {
      return writer.fail();
    }
    for (const auto extent : shape) {
      if (!writer.write_i64(extent)) {
        return writer.fail();
      }
    }
    if (!writer.write(entry.value->data(),
                      static_cast<std::size_t>(entry.value->numel()) *
                          sizeof(float))) {
      return writer.fail();
    }
  }
  for (const auto& blob : blobs) {
    HOTSPOT_CHECK(blob.name.size() <= kMaxNameLength);
    if (!writer.write_string(blob.name) ||
        !writer.write_u64(blob.bytes.size()) ||
        !writer.write(blob.bytes.data(), blob.bytes.size())) {
      return writer.fail();
    }
  }
  return writer.finalize();
}

LoadResult load_archive(const std::string& path,
                        const std::vector<NamedTensor>& tensors,
                        std::vector<NamedBlob>* blobs) {
  ArchiveReader reader(path);
  if (!reader.opened()) {
    return fail(IoStatus::kMissing, path, "cannot open for reading");
  }
  if (reader.file_size() < kMinArchiveBytes) {
    std::ostringstream detail;
    detail << "only " << reader.file_size() << " bytes; smaller than any valid archive";
    return fail(IoStatus::kTruncated, path, detail.str());
  }

  std::uint32_t magic = 0, version = 0, tensor_count = 0, blob_count = 0;
  if (!reader.read_u32(magic) || !reader.read_u32(version) ||
      !reader.read_u32(tensor_count) || !reader.read_u32(blob_count)) {
    return fail(IoStatus::kTruncated, path, "file ends inside the header");
  }
  if (magic != kMagic) {
    return fail(IoStatus::kBadFormat, path, "not an HSPT checkpoint (bad magic)");
  }
  if (version != kFormatVersion) {
    std::ostringstream detail;
    detail << "unsupported format version " << version << " (expected "
           << kFormatVersion << ")";
    return fail(IoStatus::kBadFormat, path, detail.str());
  }
  if (tensor_count > kMaxSectionEntries || blob_count > kMaxSectionEntries) {
    return fail(IoStatus::kCorrupt, path, "implausible section count");
  }
  // Full-state loads (blobs requested) demand an exact tensor count. Model-
  // only loads accept extra trailing tensors so that a deployment
  // load_checkpoint() can read the model out of a full training snapshot,
  // which appends optimizer moment buffers after the model tensors; the
  // extras are still structurally validated and checksummed below.
  if (blobs != nullptr ? tensor_count != tensors.size()
                       : tensor_count < tensors.size()) {
    std::ostringstream detail;
    detail << "tensor count mismatch (file " << tensor_count << ", model "
           << tensors.size() << ")";
    return fail(IoStatus::kShapeMismatch, path, detail.str());
  }
  if (blobs != nullptr && blob_count != blobs->size()) {
    std::ostringstream detail;
    detail << "blob count mismatch (file " << blob_count << ", expected "
           << blobs->size() << ")";
    return fail(IoStatus::kShapeMismatch, path, detail.str());
  }

  for (const auto& entry : tensors) {
    std::string name;
    if (const LoadResult result = read_name(reader, path, name); !result) {
      return result;
    }
    if (name != entry.name) {
      return fail(IoStatus::kShapeMismatch, path,
                  "expected tensor '" + entry.name + "', found '" + name + "'");
    }
    std::uint32_t rank = 0;
    if (!reader.read_u32(rank)) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside '" + name + "' rank");
    }
    if (rank > kMaxRank) {
      std::ostringstream detail;
      detail << "rank " << rank << " for '" << name << "' exceeds cap "
             << kMaxRank;
      return fail(IoStatus::kCorrupt, path, detail.str());
    }
    tensor::Shape shape(rank);
    std::int64_t numel = 1;
    for (auto& extent : shape) {
      if (!reader.read_i64(extent)) {
        return fail(IoStatus::kTruncated, path,
                    "file ends inside '" + name + "' shape");
      }
      if (extent < 0 || (extent != 0 && numel > kMaxElements / extent)) {
        return fail(IoStatus::kCorrupt, path,
                    "implausible extent in '" + name + "' shape");
      }
      numel *= extent;
    }
    if (shape != entry.value->shape()) {
      return fail(IoStatus::kShapeMismatch, path,
                  "shape mismatch for '" + name + "': file " +
                      tensor::shape_to_string(shape) + " vs model " +
                      tensor::shape_to_string(entry.value->shape()));
    }
    const std::int64_t bytes = numel * static_cast<std::int64_t>(sizeof(float));
    if (bytes > reader.remaining()) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside '" + name + "' data");
    }
    if (!reader.read(entry.value->data(), static_cast<std::size_t>(bytes))) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside '" + name + "' data");
    }
  }

  // Trailing tensors a model-only load does not ask for (e.g. optimizer
  // moments in a training snapshot): validate their structure with the same
  // caps, then skip the data so it still feeds the checksum.
  for (std::uint32_t index = static_cast<std::uint32_t>(tensors.size());
       index < tensor_count; ++index) {
    std::string name;
    if (const LoadResult result = read_name(reader, path, name); !result) {
      return result;
    }
    std::uint32_t rank = 0;
    if (!reader.read_u32(rank)) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside '" + name + "' rank");
    }
    if (rank > kMaxRank) {
      std::ostringstream detail;
      detail << "rank " << rank << " for '" << name << "' exceeds cap "
             << kMaxRank;
      return fail(IoStatus::kCorrupt, path, detail.str());
    }
    std::int64_t numel = 1;
    for (std::uint32_t axis = 0; axis < rank; ++axis) {
      std::int64_t extent = 0;
      if (!reader.read_i64(extent)) {
        return fail(IoStatus::kTruncated, path,
                    "file ends inside '" + name + "' shape");
      }
      if (extent < 0 || (extent != 0 && numel > kMaxElements / extent)) {
        return fail(IoStatus::kCorrupt, path,
                    "implausible extent in '" + name + "' shape");
      }
      numel *= extent;
    }
    const std::int64_t bytes = numel * static_cast<std::int64_t>(sizeof(float));
    if (bytes > reader.remaining() || !reader.skip(bytes)) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside '" + name + "' data");
    }
  }

  for (std::uint32_t index = 0; index < blob_count; ++index) {
    std::string name;
    if (const LoadResult result = read_name(reader, path, name); !result) {
      return result;
    }
    std::uint64_t byte_count = 0;
    if (!reader.read_u64(byte_count)) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside blob '" + name + "' length");
    }
    if (byte_count > static_cast<std::uint64_t>(reader.remaining())) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside blob '" + name + "'");
    }
    if (blobs == nullptr) {
      if (!reader.skip(static_cast<std::int64_t>(byte_count))) {
        return fail(IoStatus::kTruncated, path,
                    "file ends inside blob '" + name + "'");
      }
      continue;
    }
    NamedBlob& expected = (*blobs)[index];
    if (name != expected.name) {
      return fail(IoStatus::kShapeMismatch, path,
                  "expected blob '" + expected.name + "', found '" + name +
                      "'");
    }
    expected.bytes.resize(static_cast<std::size_t>(byte_count));
    if (!reader.read(expected.bytes.data(),
                     static_cast<std::size_t>(byte_count))) {
      return fail(IoStatus::kTruncated, path,
                  "file ends inside blob '" + name + "'");
    }
  }

  if (reader.remaining() != 0) {
    std::ostringstream detail;
    detail << reader.remaining() << " trailing bytes after the blob section";
    return fail(IoStatus::kCorrupt, path, detail.str());
  }
  std::uint32_t stored_crc = 0;
  if (!reader.read_footer(stored_crc)) {
    return fail(IoStatus::kTruncated, path, "file ends inside the CRC footer");
  }
  if (stored_crc != reader.crc()) {
    std::ostringstream detail;
    detail << "checksum mismatch (stored " << std::hex << stored_crc
           << ", computed " << reader.crc() << ")";
    return fail(IoStatus::kCorrupt, path, detail.str());
  }
  return LoadResult::success();
}

SaveResult save_tensors(const std::string& path,
                        const std::vector<NamedTensor>& tensors) {
  return save_archive(path, tensors, {});
}

LoadResult load_tensors(const std::string& path,
                        const std::vector<NamedTensor>& tensors) {
  return load_archive(path, tensors, nullptr);
}

SaveResult save_checkpoint(const std::string& path, Module& module) {
  std::vector<NamedTensor> state;
  module.collect_state("", state);
  return save_tensors(path, state);
}

LoadResult load_checkpoint(const std::string& path, Module& module) {
  std::vector<NamedTensor> state;
  module.collect_state("", state);
  const LoadResult result = load_tensors(path, state);
  if (result.ok()) {
    // Loaded weights invalidate anything derived from the old values (e.g.
    // packed binary filter caches keyed on the parameter version).
    for (Parameter* param : module.parameters()) {
      param->bump_version();
    }
  }
  return result;
}

}  // namespace hotspot::nn
