#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "util/logging.h"

namespace hotspot::nn {
namespace {

constexpr std::uint32_t kMagic = 0x48535054;  // "HSPT"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void write_i64(std::ostream& out, std::int64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void write_string(std::ostream& out, const std::string& text) {
  write_u32(out, static_cast<std::uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

bool read_u32(std::istream& in, std::uint32_t& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}

bool read_i64(std::istream& in, std::int64_t& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}

bool read_string(std::istream& in, std::string& text) {
  std::uint32_t length = 0;
  if (!read_u32(in, length)) {
    return false;
  }
  text.resize(length);
  in.read(text.data(), static_cast<std::streamsize>(length));
  return in.good();
}

}  // namespace

bool save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& entry : tensors) {
    write_string(out, entry.name);
    const auto& shape = entry.value->shape();
    write_u32(out, static_cast<std::uint32_t>(shape.size()));
    for (const auto extent : shape) {
      write_i64(out, extent);
    }
    out.write(reinterpret_cast<const char*>(entry.value->data()),
              static_cast<std::streamsize>(entry.value->numel() *
                                           sizeof(float)));
  }
  return out.good();
}

bool load_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for reading";
    return false;
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  if (!read_u32(in, magic) || magic != kMagic) {
    HOTSPOT_LOG(kError) << path << ": bad magic";
    return false;
  }
  if (!read_u32(in, version) || version != kVersion) {
    HOTSPOT_LOG(kError) << path << ": unsupported version " << version;
    return false;
  }
  if (!read_u32(in, count) ||
      count != static_cast<std::uint32_t>(tensors.size())) {
    HOTSPOT_LOG(kError) << path << ": tensor count mismatch (file " << count
                        << ", model " << tensors.size() << ")";
    return false;
  }
  for (const auto& entry : tensors) {
    std::string name;
    if (!read_string(in, name) || name != entry.name) {
      HOTSPOT_LOG(kError) << path << ": expected tensor '" << entry.name
                          << "', found '" << name << "'";
      return false;
    }
    std::uint32_t rank = 0;
    if (!read_u32(in, rank)) {
      return false;
    }
    tensor::Shape shape(rank);
    for (auto& extent : shape) {
      if (!read_i64(in, extent)) {
        return false;
      }
    }
    if (shape != entry.value->shape()) {
      HOTSPOT_LOG(kError) << path << ": shape mismatch for '" << entry.name
                          << "': file " << tensor::shape_to_string(shape)
                          << " vs model "
                          << tensor::shape_to_string(entry.value->shape());
      return false;
    }
    in.read(reinterpret_cast<char*>(entry.value->data()),
            static_cast<std::streamsize>(entry.value->numel() *
                                         sizeof(float)));
    if (!in.good()) {
      return false;
    }
  }
  return true;
}

bool save_checkpoint(const std::string& path, Module& module) {
  std::vector<NamedTensor> state;
  module.collect_state("", state);
  return save_tensors(path, state);
}

bool load_checkpoint(const std::string& path, Module& module) {
  std::vector<NamedTensor> state;
  module.collect_state("", state);
  return load_tensors(path, state);
}

}  // namespace hotspot::nn
