#include "nn/init.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::nn {

std::pair<std::int64_t, std::int64_t> compute_fans(
    const tensor::Shape& shape) {
  HOTSPOT_CHECK_GE(shape.size(), 2u);
  std::int64_t receptive = 1;
  for (std::size_t i = 2; i < shape.size(); ++i) {
    receptive *= shape[i];
  }
  return {shape[1] * receptive, shape[0] * receptive};
}

tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in,
                              std::int64_t fan_out, util::Rng& rng) {
  HOTSPOT_CHECK_GT(fan_in + fan_out, 0);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return tensor::Tensor::uniform(std::move(shape), rng,
                                 static_cast<float>(-bound),
                                 static_cast<float>(bound));
}

tensor::Tensor kaiming_normal(tensor::Shape shape, std::int64_t fan_in,
                              util::Rng& rng) {
  HOTSPOT_CHECK_GT(fan_in, 0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return tensor::Tensor::normal(std::move(shape), rng, 0.0f,
                                static_cast<float>(stddev));
}

}  // namespace hotspot::nn
