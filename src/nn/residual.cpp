#include "nn/residual.h"

#include <sstream>

#include "tensor/tensor_ops.h"

namespace hotspot::nn {

ResidualBlock::ResidualBlock(ModulePtr main_path, ModulePtr shortcut)
    : main_(std::move(main_path)), shortcut_(std::move(shortcut)) {
  HOTSPOT_CHECK(main_ != nullptr);
}

Tensor ResidualBlock::forward(const Tensor& input) {
  Tensor main_out = main_->forward(input);
  Tensor shortcut_out =
      shortcut_ != nullptr ? shortcut_->forward(input) : input;
  HOTSPOT_CHECK(main_out.same_shape(shortcut_out))
      << "residual sum shape mismatch: main "
      << tensor::shape_to_string(main_out.shape()) << " vs shortcut "
      << tensor::shape_to_string(shortcut_out.shape());
  return tensor::add(main_out, shortcut_out);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor grad_input = main_->backward(grad_output);
  if (shortcut_ != nullptr) {
    tensor::add_inplace(grad_input, shortcut_->backward(grad_output));
  } else {
    tensor::add_inplace(grad_input, grad_output);
  }
  return grad_input;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params = main_->parameters();
  if (shortcut_ != nullptr) {
    for (Parameter* param : shortcut_->parameters()) {
      params.push_back(param);
    }
  }
  return params;
}

std::string ResidualBlock::name() const {
  std::ostringstream out;
  out << "ResidualBlock(main=" << main_->name()
      << (shortcut_ != nullptr ? ", projection shortcut)" : ", identity)");
  return out.str();
}

void ResidualBlock::collect_state(const std::string& prefix,
                                  std::vector<NamedTensor>& out) {
  main_->collect_state(prefix + "main.", out);
  if (shortcut_ != nullptr) {
    shortcut_->collect_state(prefix + "shortcut.", out);
  }
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  main_->set_training(training);
  if (shortcut_ != nullptr) {
    shortcut_->set_training(training);
  }
}

}  // namespace hotspot::nn
