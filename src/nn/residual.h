// Residual block: output = main(x) + shortcut(x).
//
// The shortcut is the identity when the main path preserves the tensor
// shape, otherwise a projection (the paper uses a 1x1 binary convolution,
// Fig. 2).
#pragma once

#include "nn/module.h"

namespace hotspot::nn {

class ResidualBlock : public Module {
 public:
  // `shortcut` may be null for an identity connection.
  ResidualBlock(ModulePtr main_path, ModulePtr shortcut);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  void set_training(bool training) override;
  void collect_state(const std::string& prefix,
                     std::vector<NamedTensor>& out) override;

  Module& main_path() { return *main_; }
  bool has_projection() const { return shortcut_ != nullptr; }
  // Null for an identity connection.
  Module* shortcut() { return shortcut_.get(); }

 private:
  ModulePtr main_;
  ModulePtr shortcut_;
};

}  // namespace hotspot::nn
