// Sequential container: modules applied in order.
#pragma once

#include "nn/module.h"

namespace hotspot::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  // Takes ownership; returns *this for chaining.
  Sequential& add(ModulePtr module);

  template <typename LayerT, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<LayerT>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  void set_training(bool training) override;
  void collect_state(const std::string& prefix,
                     std::vector<NamedTensor>& out) override;

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t index);

  // Per-layer description lines, recursing into nested containers.
  std::vector<std::string> layer_names() const;

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace hotspot::nn
