// Full-precision 2-D convolution layer (used by the DAC'17 CNN baseline and
// as the float reference the binarized path is compared against).
#pragma once

#include "nn/module.h"
#include "tensor/conv.h"
#include "util/rng.h"

namespace hotspot::nn {

class Conv2d : public Module {
 public:
  // Xavier-initialized convolution. `bias` may be disabled (ResNet-style
  // conv+BN pairs do not need it).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool with_bias, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;

  const tensor::ConvSpec& spec() const { return spec_; }
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  tensor::ConvSpec spec_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace hotspot::nn
