#include "nn/module.h"

namespace hotspot::nn {

std::int64_t Module::parameter_count() {
  std::int64_t count = 0;
  for (Parameter* param : parameters()) {
    count += param->value.numel();
  }
  return count;
}

void Module::collect_state(const std::string& prefix,
                           std::vector<NamedTensor>& out) {
  for (Parameter* param : parameters()) {
    out.push_back({prefix + param->name, &param->value});
  }
}

}  // namespace hotspot::nn
