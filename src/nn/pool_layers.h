// Pooling layers over NCHW activations.
#pragma once

#include "nn/module.h"
#include "tensor/pool.h"

namespace hotspot::nn {

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::int64_t window, std::int64_t stride = -1);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  tensor::PoolSpec spec_;
  tensor::Shape cached_input_shape_;
};

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t window, std::int64_t stride = -1);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;
  const tensor::PoolSpec& spec() const { return spec_; }

 private:
  tensor::PoolSpec spec_;
  tensor::Shape cached_input_shape_;
  Tensor cached_argmax_;
};

// [N,C,H,W] -> [N,C]; the head of the residual networks.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape cached_input_shape_;
};

}  // namespace hotspot::nn
