#include "nn/sequential.h"

#include <sstream>

namespace hotspot::nn {

Sequential& Sequential::add(ModulePtr module) {
  HOTSPOT_CHECK(module != nullptr);
  modules_.push_back(std::move(module));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor current = input;
  for (auto& module : modules_) {
    current = module->forward(current);
  }
  return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor current = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& module : modules_) {
    for (Parameter* param : module->parameters()) {
      params.push_back(param);
    }
  }
  return params;
}

std::string Sequential::name() const {
  std::ostringstream out;
  out << "Sequential(" << modules_.size() << " layers)";
  return out.str();
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& module : modules_) {
    module->set_training(training);
  }
}

void Sequential::collect_state(const std::string& prefix,
                               std::vector<NamedTensor>& out) {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    modules_[i]->collect_state(prefix + std::to_string(i) + ".", out);
  }
}

Module& Sequential::at(std::size_t index) {
  HOTSPOT_CHECK_LT(index, modules_.size());
  return *modules_[index];
}

std::vector<std::string> Sequential::layer_names() const {
  std::vector<std::string> names;
  for (const auto& module : modules_) {
    names.push_back(module->name());
  }
  return names;
}

}  // namespace hotspot::nn
