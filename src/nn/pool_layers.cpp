#include "nn/pool_layers.h"

#include <sstream>

namespace hotspot::nn {

AvgPool2d::AvgPool2d(std::int64_t window, std::int64_t stride)
    : spec_{window, stride > 0 ? stride : window} {}

Tensor AvgPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::avg_pool2d(input, spec_);
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  return tensor::avg_pool2d_backward(grad_output, cached_input_shape_, spec_);
}

std::string AvgPool2d::name() const {
  std::ostringstream out;
  out << "AvgPool2d(w" << spec_.window << ", s" << spec_.stride << ")";
  return out.str();
}

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride)
    : spec_{window, stride > 0 ? stride : window} {}

Tensor MaxPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::max_pool2d(input, spec_, &cached_argmax_);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  return tensor::max_pool2d_backward(grad_output, cached_argmax_,
                                     cached_input_shape_, spec_);
}

std::string MaxPool2d::name() const {
  std::ostringstream out;
  out << "MaxPool2d(w" << spec_.window << ", s" << spec_.stride << ")";
  return out.str();
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::global_avg_pool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  return tensor::global_avg_pool_backward(grad_output, cached_input_shape_);
}

}  // namespace hotspot::nn
