#include "nn/batchnorm_layer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/tensor_ops.h"

namespace hotspot::nn {

namespace {

// Variance is mathematically nonnegative, but running_var entries can drift
// slightly negative through EMA float error or checkpoint round-trips; the
// raw 1/sqrt(var + eps) then yields NaN (or Inf once var + eps underflows to
// zero) and poisons every downstream activation. Clamping to zero keeps the
// factor finite for any var, and is a no-op on healthy statistics.
inline float inv_std_term(float var, float epsilon) {
  return 1.0f / std::sqrt(std::max(var, 0.0f) + epsilon);
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", Tensor::ones({channels})),
      beta_("beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {
  HOTSPOT_CHECK_GT(channels, 0);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(input.dim(1), channels_);
  cached_input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t hw = input.dim(2) * input.dim(3);

  Tensor mean({channels_});
  Tensor var({channels_});
  if (training_) {
    mean = tensor::channel_mean(input);
    var = tensor::channel_variance(input, mean);
    // Exponential moving averages track statistics for inference.
    for (std::int64_t c = 0; c < channels_; ++c) {
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_ = Tensor({channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    cached_inv_std_[c] = inv_std_term(var[c], epsilon_);
  }

  Tensor output(input.shape());
  cached_xhat_ = Tensor(input.shape());
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float mu = mean[c];
      const float inv_std = cached_inv_std_[c];
      const float g = gamma_.value[c];
      const float b = beta_.value[c];
      const float* in_plane = input.data() + (ni * channels_ + c) * hw;
      float* xhat_plane = cached_xhat_.data() + (ni * channels_ + c) * hw;
      float* out_plane = output.data() + (ni * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float xhat = (in_plane[i] - mu) * inv_std;
        xhat_plane[i] = xhat;
        out_plane[i] = g * xhat + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::inference_inv_std() const {
  Tensor inv_std({channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    inv_std[c] = inv_std_term(running_var_[c], epsilon_);
  }
  return inv_std;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  HOTSPOT_CHECK(grad_output.shape() == cached_input_shape_)
      << "backward called with mismatched gradient shape";
  const std::int64_t n = grad_output.dim(0);
  const std::int64_t hw = grad_output.dim(2) * grad_output.dim(3);
  const auto m = static_cast<double>(n * hw);

  Tensor grad_input(cached_input_shape_);
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Per-channel reductions: sum g, sum g*xhat.
    double sum_g = 0.0;
    double sum_g_xhat = 0.0;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* g_plane = grad_output.data() + (ni * channels_ + c) * hw;
      const float* xhat_plane = cached_xhat_.data() + (ni * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_g += static_cast<double>(g_plane[i]);
        sum_g_xhat += static_cast<double>(g_plane[i]) *
                      static_cast<double>(xhat_plane[i]);
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_g_xhat);
    beta_.grad[c] += static_cast<float>(sum_g);

    const double gamma_inv_std = static_cast<double>(gamma_.value[c]) *
                                 static_cast<double>(cached_inv_std_[c]);
    if (training_) {
      // dx = gamma*inv_std/m * (m*g - sum(g) - xhat * sum(g*xhat))
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* g_plane = grad_output.data() + (ni * channels_ + c) * hw;
        const float* xhat_plane =
            cached_xhat_.data() + (ni * channels_ + c) * hw;
        float* dx_plane = grad_input.data() + (ni * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double term = m * static_cast<double>(g_plane[i]) - sum_g -
                              static_cast<double>(xhat_plane[i]) * sum_g_xhat;
          dx_plane[i] = static_cast<float>(gamma_inv_std * term / m);
        }
      }
    } else {
      // Inference-mode statistics are constants w.r.t. the input.
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* g_plane = grad_output.data() + (ni * channels_ + c) * hw;
        float* dx_plane = grad_input.data() + (ni * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          dx_plane[i] =
              static_cast<float>(gamma_inv_std * static_cast<double>(g_plane[i]));
        }
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() {
  return {&gamma_, &beta_};
}

void BatchNorm2d::collect_state(const std::string& prefix,
                                std::vector<NamedTensor>& out) {
  Module::collect_state(prefix, out);
  out.push_back({prefix + "running_mean", &running_mean_});
  out.push_back({prefix + "running_var", &running_var_});
}

std::string BatchNorm2d::name() const {
  std::ostringstream out;
  out << "BatchNorm2d(" << channels_ << ")";
  return out.str();
}

}  // namespace hotspot::nn
