#include "nn/activation_layers.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor_ops.h"

namespace hotspot::nn {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    output[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  HOTSPOT_CHECK(grad_output.same_shape(cached_input_));
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

Tensor SignSTE::forward(const Tensor& input) {
  cached_input_ = input;
  return tensor::sign(input);
}

Tensor SignSTE::backward(const Tensor& grad_output) {
  HOTSPOT_CHECK(grad_output.same_shape(cached_input_));
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    // Straight-through with saturation: pass the gradient only where the
    // pre-binarization activation lies in (-1, 1).
    grad_input[i] =
        std::fabs(cached_input_[i]) < 1.0f ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  HOTSPOT_CHECK_GE(input.rank(), 2);
  const std::int64_t rows = input.dim(0);
  return input.reshaped({rows, input.numel() / rows});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_input_shape_);
}

Dropout::Dropout(float drop_probability, util::Rng& rng)
    : drop_probability_(drop_probability), rng_(rng.fork(0x44524f50)) {
  HOTSPOT_CHECK(drop_probability >= 0.0f && drop_probability < 1.0f)
      << "drop probability " << drop_probability;
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || drop_probability_ == 0.0f) {
    cached_mask_ = Tensor();
    return input;
  }
  const float keep = 1.0f - drop_probability_;
  cached_mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float mask =
        rng_.bernoulli(static_cast<double>(keep)) ? 1.0f / keep : 0.0f;
    cached_mask_[i] = mask;
    output[i] = input[i] * mask;
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.numel() == 0) {
    return grad_output;
  }
  return tensor::mul(grad_output, cached_mask_);
}

std::string Dropout::name() const {
  std::ostringstream out;
  out << "Dropout(p=" << drop_probability_ << ")";
  return out.str();
}

}  // namespace hotspot::nn
