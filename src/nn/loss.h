// Softmax cross-entropy loss with the paper's biased-label scheme
// (Sec. 3.4.3, following DAC'17 [16]).
//
// Labels are two-class distributions over [non-hotspot, hotspot]:
//   hotspot      -> [0, 1]
//   non-hotspot  -> [1, 0]          during the main training phase
//   non-hotspot  -> [1-eps, eps]    during the biased finetune phase,
// which trades false alarms for detection accuracy.
#pragma once

#include "tensor/tensor.h"

namespace hotspot::nn {

class SoftmaxCrossEntropy {
 public:
  // Computes the mean loss for logits [n,2] and targets [n,2], and stores
  // d(loss)/d(logits) for gradient().
  double forward(const tensor::Tensor& logits, const tensor::Tensor& targets);

  // Gradient from the most recent forward().
  const tensor::Tensor& gradient() const { return grad_; }

 private:
  tensor::Tensor grad_;
};

// Builds target rows for the given labels. `bias_epsilon` = 0 yields hard
// one-hot targets; a positive value smooths the non-hotspot target to
// [1-eps, eps] while hotspot targets stay [0, 1].
tensor::Tensor make_targets(const std::vector<int>& labels,
                            float bias_epsilon);

}  // namespace hotspot::nn
