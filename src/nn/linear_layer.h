// Fully connected layer.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace hotspot::nn {

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool with_bias,
         util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  bool with_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace hotspot::nn
