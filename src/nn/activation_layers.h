// Pointwise layers: ReLU, the straight-through-estimator sign layer
// (Eq. 10-11), Flatten, and Dropout.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace hotspot::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

// y = sign(x) in {-1,+1}; backward uses the straight-through estimator with
// saturation, d sign(x)/dx := 1_{|x| < 1} (paper Eq. 10-11).
class SignSTE : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "SignSTE"; }

 private:
  Tensor cached_input_;
};

// [N, C, H, W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_input_shape_;
};

// Inverted dropout. The paper does not use dropout (Sec. 3.4.2, following
// ResNet); the layer exists for the baselines and ablations.
class Dropout : public Module {
 public:
  Dropout(float drop_probability, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  float drop_probability_;
  util::Rng rng_;
  Tensor cached_mask_;
};

}  // namespace hotspot::nn
