// Ablation: down-sampled input size l_s (Sec. 3.4.1).
//
// The paper tunes l_s and settles on 128 as "a nice balance between
// accuracy and speed" for 1.2um contest clips. We sweep the CI-scale
// equivalents: coarser images are faster but destroy the pixels that
// distinguish printable from failing geometry, so accuracy falls off below
// a knee. (At our 1024nm clips, 32px leaves the critical dimensions 2-4px
// wide — the same regime as the paper's choice.)
#include <cstdio>

#include "bench_common.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Ablation: input image size l_s",
      "l_s = 128 'achieves a nice balance between accuracy and speed' "
      "(Sec. 3.4.1)");

  util::Table table({"l_s", "Accu (%)", "FA#", "Train (s)", "Runtime (s)"});
  for (const long ls : {8L, 16L, 32L}) {
    const dataset::Benchmark data = dataset::generate_benchmark(
        dataset::iccad2012_config(bench::bench_scale(), ls));
    core::BnnDetectorConfig config = core::BnnDetectorConfig::compact(ls);
    core::BnnHotspotDetector detector(config);
    util::Rng rng(5);
    const eval::EvaluationRow row =
        eval::evaluate_detector(detector, data.train, data.test, rng);
    table.add_row({std::to_string(ls),
                   util::format_double(row.matrix.accuracy() * 100.0, 1),
                   util::format_count(row.matrix.false_alarm()),
                   util::format_double(row.train_seconds, 1),
                   util::format_double(row.eval_seconds, 2)});
    std::printf("  finished l_s = %ld\n", ls);
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("Expected shape: below the knee the critical dimensions "
              "vanish and classification degenerates (flag-everything -> "
              "huge FA#, or miss-everything -> low Accu); at the knee the "
              "detector balances both while runtime grows ~l_s^2. The "
              "paper's tuning chose l_s = 128 for the same reason.\n");
  return 0;
}
