// CLI for the bench regression gate (src/obs/bench_gate.h).
//
// Modes:
//   bench_compare FRESH.json BASELINE.json [--time-tolerance X]
//                 [--throughput-tolerance X] [--time-floor SECONDS]
//       Validates both files' schemas, then gates FRESH against BASELINE.
//       Exit 0 when no regressions, 1 on regression or schema failure.
//
//   bench_compare --check-schema FILE.json [FILE2.json ...]
//       Structural validation only (manifest + metrics sections present).
//       Exit 0 when every file passes, 1 otherwise.
//
// Exit 2 means the tool itself was misused (bad flags, unreadable or
// unparseable file) — distinct from a gate verdict so CI can tell
// "regressed" apart from "broken invocation".
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_gate.h"
#include "util/json.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare FRESH.json BASELINE.json [--time-tolerance X]\n"
      "                     [--throughput-tolerance X] [--time-floor S]\n"
      "       bench_compare --check-schema FILE.json [FILE.json ...]\n");
}

bool load(const std::string& path, hotspot::util::JsonValue& out) {
  std::string error;
  if (!hotspot::util::parse_json_file(path, out, error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

bool parse_positive(const char* text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(value > 0.0)) {
    return false;
  }
  out = value;
  return true;
}

int run_check_schema(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    usage();
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : paths) {
    hotspot::util::JsonValue doc;
    if (!load(path, doc)) {
      return 2;
    }
    std::string error;
    if (hotspot::obs::check_bench_schema(doc, error)) {
      std::printf("%s: schema OK\n", path.c_str());
    } else {
      std::printf("%s: schema FAIL: %s\n", path.c_str(), error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  hotspot::obs::GateConfig config;
  bool check_schema_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-schema") {
      check_schema_mode = true;
    } else if (arg == "--time-tolerance" || arg == "--throughput-tolerance" ||
               arg == "--time-floor") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n", arg.c_str());
        return 2;
      }
      double value = 0.0;
      if (!parse_positive(argv[++i], value)) {
        std::fprintf(stderr, "bench_compare: invalid value for %s: '%s'\n",
                     arg.c_str(), argv[i]);
        return 2;
      }
      if (arg == "--time-tolerance") {
        config.time_tolerance = value;
      } else if (arg == "--throughput-tolerance") {
        config.throughput_tolerance = value;
      } else {
        config.time_floor_seconds = value;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (check_schema_mode) {
    return run_check_schema(positional);
  }
  if (positional.size() != 2) {
    usage();
    return 2;
  }

  hotspot::util::JsonValue fresh;
  hotspot::util::JsonValue baseline;
  if (!load(positional[0], fresh) || !load(positional[1], baseline)) {
    return 2;
  }
  const hotspot::obs::GateResult result =
      hotspot::obs::compare_bench(baseline, fresh, config);
  std::printf("fresh:    %s\nbaseline: %s\n%s", positional[0].c_str(),
              positional[1].c_str(),
              hotspot::obs::gate_report(result).c_str());
  return result.ok() ? 0 : 1;
}
