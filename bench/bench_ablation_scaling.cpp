// Ablation: input scaling factor variants (design choice, Sec. 3.2/3.4.3).
//
// The paper refines XNOR-Net by giving each input channel its own scaling
// factor alpha_T (Eq. 14), arguing it estimates the input tensor more
// accurately. This ablation trains the same BRNN with
//   per-channel alpha_T (paper) / scalar alpha (XNOR-Net) / no input scaling
// and reports accuracy, false alarms, estimation error, and packed
// inference time — the accuracy-vs-speed tradeoff behind the design.
#include <cstdio>

#include "bench_common.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Ablation: alpha_T input-scaling variants",
      "per-channel scaling 'can estimate the input tensor more accurately' "
      "than XNOR-Net's shared factor (Sec. 3.2)");

  const auto ls = bench::bench_image_size();
  const dataset::Benchmark data = dataset::generate_benchmark(
      dataset::iccad2012_config(bench::bench_scale(), ls));

  // Estimation error of each variant: ||X - alpha (x) sign(X)|| / ||X|| on a
  // multi-channel activation tensor whose channels have very different
  // magnitudes (the situation Eq. 14's per-channel factors are built for;
  // clip images themselves have one channel, but every deeper layer of the
  // network sees many).
  util::Rng noise_rng(7);
  tensor::Tensor activations({8, 8, 16, 16});
  for (std::int64_t c = 0; c < 8; ++c) {
    const float stddev = 0.2f + 0.4f * static_cast<float>(c);
    for (std::int64_t n = 0; n < 8; ++n) {
      float* plane = activations.data() + (n * 8 + c) * 256;
      for (std::int64_t i = 0; i < 256; ++i) {
        plane[i] = static_cast<float>(noise_rng.normal(0.0, stddev));
      }
    }
  }
  const tensor::ConvSpec spec{3, 3, 1, 1};
  const tensor::Tensor s = tensor::sign(activations);

  util::Table table({"Scaling", "Accu (%)", "FA#", "Runtime (s)",
                     "rel. estimation error"});
  for (const auto mode :
       {bitops::InputScaling::kPerChannel, bitops::InputScaling::kScalar,
        bitops::InputScaling::kNone}) {
    tensor::Tensor estimate;
    if (mode == bitops::InputScaling::kPerChannel) {
      estimate =
          tensor::mul(s, bitops::input_scales_per_channel(activations, spec));
    } else if (mode == bitops::InputScaling::kScalar) {
      const tensor::Tensor alpha =
          bitops::input_scales_scalar(activations, spec);  // [N,1,H,W]
      estimate = tensor::Tensor(activations.shape());
      for (std::int64_t n = 0; n < 8; ++n) {
        for (std::int64_t c = 0; c < 8; ++c) {
          for (std::int64_t i = 0; i < 256; ++i) {
            estimate[(n * 8 + c) * 256 + i] =
                s[(n * 8 + c) * 256 + i] * alpha[n * 256 + i];
          }
        }
      }
    } else {
      estimate = s;
    }
    const double rel_error =
        tensor::l2_norm(tensor::sub(activations, estimate)) /
        tensor::l2_norm(activations);

    core::BnnDetectorConfig config = core::BnnDetectorConfig::compact(ls);
    config.model.scaling = mode;
    core::BnnHotspotDetector detector(config);
    util::Rng rng(11);
    const eval::EvaluationRow row =
        eval::evaluate_detector(detector, data.train, data.test, rng);
    table.add_row({bitops::to_string(mode),
                   util::format_double(row.matrix.accuracy() * 100.0, 1),
                   util::format_count(row.matrix.false_alarm()),
                   util::format_double(row.eval_seconds, 2),
                   util::format_double(rel_error, 3)});
    std::printf("  trained %s\n", bitops::to_string(mode));
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("Expected shape: per-channel has the lowest estimation error; "
              "scalar is the fastest packed kernel (dense popcount lanes).\n");
  return 0;
}
