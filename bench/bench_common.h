// Shared knobs for the bench harnesses.
//
// The paper's numbers come from the full ICCAD-2012 benchmark (34k clips,
// 128px inputs) on a GTX 1060; this repository reproduces the *shape* of
// each result at a CI scale that finishes on a 1-core CPU in minutes.
// HOTSPOT_BENCH_SCALE (fraction of Table-2 sample counts) and
// HOTSPOT_BENCH_LS (clip image resolution) can be raised for closer runs.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hotspot::bench {

// Bench knobs are parsed strictly: a typo'd HOTSPOT_BENCH_SCALE must not
// silently fall back (atof("0,5") == 0 would emit a garbage BENCH_*.json
// that poisons the regression baselines). Exit 2 mirrors bench_compare's
// "broken invocation" code.
inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed) || parsed <= 0.0) {
    std::fprintf(stderr, "invalid %s='%s': expected a positive number\n",
                 name, value);
    std::exit(2);
  }
  return parsed;
}

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed <= 0) {
    std::fprintf(stderr, "invalid %s='%s': expected a positive integer\n",
                 name, value);
    std::exit(2);
  }
  return parsed;
}

inline double bench_scale() { return env_double("HOTSPOT_BENCH_SCALE", 0.05); }
inline long bench_image_size() { return env_long("HOTSPOT_BENCH_LS", 32); }

// Minimal machine-readable result emitter shared by the bench harnesses.
// Builds one JSON object of scalar fields plus optional nested arrays, so
// each bench can drop a BENCH_<name>.json next to its stdout table and the
// perf trajectory can be tracked run over run.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      return set_raw(key, "null");  // JSON has no NaN/Inf literals
    }
    char buffer[64];
    // Integers exactly, everything else with round-trip precision, so the
    // regression gate compares the measured value rather than a %.6g
    // truncation of it.
    if (value == std::floor(value) && std::fabs(value) < 9007199254740992.0) {
      std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    }
    return set_raw(key, buffer);
  }
  JsonObject& set(const std::string& key, long value) {
    return set_raw(key, std::to_string(value));
  }
  JsonObject& set(const std::string& key, int value) {
    return set_raw(key, std::to_string(value));
  }
  JsonObject& set(const std::string& key, bool value) {
    return set_raw(key, value ? "true" : "false");
  }
  JsonObject& set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') {
        quoted += '\\';
      }
      quoted += c;
    }
    quoted += '"';
    return set_raw(key, quoted);
  }
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  // Preformatted JSON (a nested object or array built by the caller).
  JsonObject& set_raw(const std::string& key, const std::string& json) {
    entries_.emplace_back(key, json);
    return *this;
  }

  std::string str() const {
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << "\"" << entries_[i].first << "\": " << entries_[i].second;
    }
    out << "}";
    return out.str();
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline std::string json_array(const std::vector<JsonObject>& items) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << items[i].str();
  }
  out << "]";
  return out.str();
}

// Writes the object to `path` and reports the emission on stdout so bench
// logs record where the machine-readable copy went. Every emission carries
// a "manifest" section (build/runtime provenance; bench_compare refuses
// files without one) and a "metrics" section — the process-wide registry
// snapshot plus any collected trace spans — so BENCH_*.json records cache
// behaviour and layer timing alongside the headline numbers.
inline bool write_json_result(const std::string& path, JsonObject result) {
  result.set_raw("manifest",
                 obs::manifest_json(obs::collect_manifest()));
  result.set_raw("metrics",
                 obs::to_json(obs::MetricsRegistry::global().snapshot(),
                              obs::collect_span_report()));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << result.str() << "\n";
  std::printf("[json] wrote %s\n", path.c_str());
  return true;
}

inline void print_header(const char* experiment, const char* paper_result) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reports: %s\n", paper_result);
  std::printf("Scale: %.3f of Table-2 counts, l_s = %ld (override with\n",
              bench_scale(), bench_image_size());
  std::printf("HOTSPOT_BENCH_SCALE / HOTSPOT_BENCH_LS).\n");
  std::printf("==============================================================\n\n");
}

}  // namespace hotspot::bench
