// Shared knobs for the bench harnesses.
//
// The paper's numbers come from the full ICCAD-2012 benchmark (34k clips,
// 128px inputs) on a GTX 1060; this repository reproduces the *shape* of
// each result at a CI scale that finishes on a 1-core CPU in minutes.
// HOTSPOT_BENCH_SCALE (fraction of Table-2 sample counts) and
// HOTSPOT_BENCH_LS (clip image resolution) can be raised for closer runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hotspot::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

inline double bench_scale() { return env_double("HOTSPOT_BENCH_SCALE", 0.05); }
inline long bench_image_size() { return env_long("HOTSPOT_BENCH_LS", 32); }

inline void print_header(const char* experiment, const char* paper_result) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reports: %s\n", paper_result);
  std::printf("Scale: %.3f of Table-2 counts, l_s = %ld (override with\n",
              bench_scale(), bench_image_size());
  std::printf("HOTSPOT_BENCH_SCALE / HOTSPOT_BENCH_LS).\n");
  std::printf("==============================================================\n\n");
}

}  // namespace hotspot::bench
