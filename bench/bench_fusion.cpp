// Graph-fusion micro-bench: unfused packed module chain vs the fused graph
// executor (BN -> Binarize -> BinaryConv folded to threshold-compare ops,
// DESIGN.md §14).
//
// The fused path must be a free lunch twice over: bit-identical logits (the
// executor's contract, checked here on every mode) and faster, because per
// clip it skips materializing the BN output and the separate binarize pass,
// and for kNone chains it never unpacks the intermediate counts to floats
// at all. Emits BENCH_fusion.json; gated against bench/baselines/ by
// bench_compare in CI.
//
// Scale knobs: HOTSPOT_BENCH_SCALE / HOTSPOT_BENCH_LS and
// HOTSPOT_BENCH_REPEATS (timing repeats, best-of).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "core/brnn.h"
#include "graph/executor.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace hotspot;

double best_of(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (!a.same_shape(b)) {
    return false;
  }
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "Graph fusion: unfused packed chain vs fused threshold-compare ops",
      "speed is the paper's headline claim (60 s vs 4974 s, Table 3); "
      "fusion removes the float BN+binarize stages the paper's Fig. 3 "
      "block otherwise materializes per layer");

  const auto ls = bench::bench_image_size();
  const auto repeats =
      static_cast<int>(bench::env_long("HOTSPOT_BENCH_REPEATS", 3));
  const long batch = 64;

  util::Rng data_rng(0xf05ed);
  const tensor::Tensor images =
      tensor::Tensor::uniform({batch, 1, ls, ls}, data_rng, 0.0f, 1.0f);

  const bitops::InputScaling modes[] = {bitops::InputScaling::kPerChannel,
                                        bitops::InputScaling::kScalar,
                                        bitops::InputScaling::kNone};

  std::printf("Workload: %ld clips at %ldpx through compact BRNN, "
              "repeats=%d (best-of)\n\n",
              batch, ls, repeats);
  std::printf("%14s %14s %14s %10s %12s %10s\n", "scaling", "unfused (s)",
              "fused (s)", "speedup", "clips/s", "identical");

  std::vector<bench::JsonObject> sweep;
  bool all_identical = true;

  for (const bitops::InputScaling scaling : modes) {
    core::BrnnConfig config = core::BrnnConfig::compact(ls);
    config.scaling = scaling;
    util::Rng rng(0x5eed + static_cast<int>(scaling));
    core::BrnnModel model(config, rng);
    // Non-trivial batch-norm statistics, as deployment would have.
    model.set_training(true);
    for (int i = 0; i < 3; ++i) {
      model.forward(tensor::Tensor::uniform({8, 1, ls, ls}, rng, 0.0f, 1.0f));
    }
    model.set_training(false);
    model.set_backend(core::Backend::kPacked);

    model.forward(images);  // warm-up: packs the filter cache
    tensor::Tensor unfused_logits;
    const double unfused_s =
        best_of(repeats, [&] { unfused_logits = model.forward(images); });

    graph::GraphExecutor executor(model, graph::FusionMode::kFused);
    executor.run(images);  // warm-up: plans pack layouts
    tensor::Tensor fused_logits;
    const double fused_s =
        best_of(repeats, [&] { fused_logits = executor.run(images); });

    const bool identical = bit_identical(fused_logits, unfused_logits);
    all_identical = all_identical && identical;
    const double speedup = fused_s > 0.0 ? unfused_s / fused_s : 0.0;
    const double clips_per_s =
        fused_s > 0.0 ? static_cast<double>(batch) / fused_s : 0.0;

    std::printf("%14s %14.4f %14.4f %9.2fx %12.1f %10s\n",
                bitops::to_string(scaling), unfused_s, fused_s, speedup,
                clips_per_s, identical ? "yes" : "NO");

    bench::JsonObject entry;
    entry.set("scaling", bitops::to_string(scaling))
        .set("unfused_seconds", unfused_s)
        .set("fused_seconds", fused_s)
        .set("fused_speedup", speedup)
        .set("fused_clips_per_second", clips_per_s)
        .set("bit_identical", identical);
    sweep.push_back(entry);
  }

  std::printf("\nIdentity: fused logits %s the unfused chain.\n",
              all_identical ? "bit-identical to" : "DIVERGED from");

  bench::JsonObject result;
  result.set("bench", "fusion")
      .set("image_size", ls)
      .set("batch", batch)
      .set("repeats", repeats)
      .set("bit_identical", all_identical)
      .set_raw("sweep", bench::json_array(sweep));
  bench::write_json_result("BENCH_fusion.json", result);

  return all_identical ? 0 : 1;
}
