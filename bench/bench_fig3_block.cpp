// Fig. 3: the BNN convolution block (BatchNorm -> Binarize -> BinaryConv).
//
// Two measurements:
//  1. Stage cost breakdown of one block in the packed path (BN, alpha_T,
//     bit packing, popcount GEMM): where the time actually goes.
//  2. The information-loss rationale for placing BN *before* the binarize
//     layer (Sec. 3.1, following XNOR-Net): binarizing centred activations
//     keeps far more per-pixel information than binarizing raw ones. We
//     quantify it as the entropy of the sign bit over each channel.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bitops/scaling.h"
#include "bitops/xnor_gemm.h"
#include "core/binary_conv.h"
#include "nn/batchnorm_layer.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace hotspot;

// Mean per-channel entropy (bits) of the sign of the activations: 1.0 means
// the binarized channel carries a full bit per pixel, 0 means it is
// constant (all information destroyed by binarization).
double mean_sign_entropy(const tensor::Tensor& x) {
  const std::int64_t c = x.dim(1);
  const std::int64_t plane = x.dim(0) * x.dim(2) * x.dim(3);
  double total = 0.0;
  for (std::int64_t ci = 0; ci < c; ++ci) {
    std::int64_t positive = 0;
    for (std::int64_t n = 0; n < x.dim(0); ++n) {
      for (std::int64_t i = 0; i < x.dim(2) * x.dim(3); ++i) {
        positive += x.data()[(n * c + ci) * x.dim(2) * x.dim(3) + i] >= 0.0f;
      }
    }
    const double p = static_cast<double>(positive) / static_cast<double>(plane);
    if (p > 0.0 && p < 1.0) {
      total += -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
    }
  }
  return total / static_cast<double>(c);
}

}  // namespace

int main() {
  using namespace hotspot;
  bench::print_header(
      "Fig. 3: BNN block structure (BN -> Binarize -> BinaryConv)",
      "BN placed before binarizing to reduce the information loss of "
      "binarization (following XNOR-Net)");

  util::Rng rng(1);
  const std::int64_t channels = 64;
  const std::int64_t spatial = 16;
  const tensor::ConvSpec spec{3, 3, 1, 1};
  // Strong positive offset, as post-conv pre-activations typically have:
  // without BN, sign() maps nearly everything to +1.
  const tensor::Tensor x =
      tensor::Tensor::normal({8, channels, spatial, spatial}, rng, 2.0f, 1.0f);
  const tensor::Tensor w = tensor::Tensor::normal(
      {channels, channels, 3, 3}, rng, 0.0f, 0.1f);

  // 1. Stage cost breakdown (per-channel scaling mode).
  nn::BatchNorm2d bn(channels);
  for (int i = 0; i < 40; ++i) {
    bn.forward(x);  // converge the running statistics
  }
  bn.set_training(false);
  util::Table costs({"Stage", "Time (ms)"});
  util::Stopwatch timer;
  const tensor::Tensor normed = bn.forward(x);
  costs.add_row({"BatchNorm", util::format_double(timer.milliseconds(), 2)});
  timer.restart();
  const tensor::Tensor alpha = bitops::input_scales_per_channel(normed, spec);
  costs.add_row({"alpha_T (Eq. 14 box filter)",
                 util::format_double(timer.milliseconds(), 2)});
  timer.restart();
  const bitops::BitMatrix patches =
      bitops::pack_patches_channel_blocked(normed, spec);
  costs.add_row({"Binarize + pack patches",
                 util::format_double(timer.milliseconds(), 2)});
  timer.restart();
  const bitops::BitMatrix filters = bitops::pack_filters_channel_blocked(w);
  costs.add_row({"Pack filters (cached at deploy)",
                 util::format_double(timer.milliseconds(), 2)});
  timer.restart();
  // Popcount sweep: the actual binary convolution arithmetic.
  std::int64_t checksum = 0;
  for (std::int64_t p = 0; p < patches.rows(); ++p) {
    for (std::int64_t co = 0; co < channels; ++co) {
      checksum ^= bitops::xnor_dot(patches.row(p), filters.row(co),
                                   patches.words_per_row(), 9 * channels);
    }
  }
  costs.add_row({"XNOR + popcount sweep",
                 util::format_double(timer.milliseconds(), 2)});
  std::printf("Block stage costs (C=%lld, %lldx%lld, batch 8; checksum %lld):\n%s\n",
              static_cast<long long>(channels),
              static_cast<long long>(spatial),
              static_cast<long long>(spatial),
              static_cast<long long>(checksum),
              costs.to_string().c_str());

  // 2. BN-before-binarize information retention.
  // Raw activations with a strong positive offset (typical post-conv):
  // their sign is almost always +1 -> near-zero information survives.
  const double raw_entropy = mean_sign_entropy(x);
  const double bn_entropy = mean_sign_entropy(normed);
  util::Table info({"Binarize input", "Mean sign entropy (bits/pixel)"});
  info.add_row({"raw activations", util::format_double(raw_entropy, 3)});
  info.add_row({"after BatchNorm", util::format_double(bn_entropy, 3)});
  std::printf("%s", info.to_string().c_str());
  std::printf("BN centres each channel, so sign() keeps ~1 bit/pixel instead "
              "of collapsing (the Fig. 3 ordering rationale).\n");
  return 0;
}
