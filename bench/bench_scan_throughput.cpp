// Scan-throughput benchmark: eager extract-then-predict vs the streaming
// scan pipeline (src/scan/) on a tiled chip.
//
// A chip built by repeating one pattern tile is the dedup cache's best
// case — and the realistic one: production layouts are dominated by
// repeated standard cells. The streaming path should (a) produce
// bit-identical labels to the eager path, (b) scan >= 1.5x more windows
// per second thanks to dedup + pipelining, and (c) hold a bounded working
// set instead of materializing every clip up front (reported here as a
// byte-count proxy, not RSS, so the number is deterministic).
//
//   ./bench/bench_scan_throughput [--quick]
//
// --quick runs the CI-sized 4x4 chip only; the default also runs 8x8.
// Emits BENCH_scan.json.
#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/brnn.h"
#include "core/trainer.h"
#include "dataset/generator.h"
#include "dataset/patterns.h"
#include "layout/clip.h"
#include "scan/pipeline.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace hotspot;

// One tile repeated tiles x tiles: the repeated-standard-cell layout shape.
layout::Pattern build_tiled_chip(const dataset::PatternParams& params,
                                 int tiles_per_side) {
  util::Rng rng(4242);
  const layout::Pattern tile =
      dataset::generate_pattern(dataset::Family::kDenseLines, params, rng);
  layout::Pattern chip;
  for (int ty = 0; ty < tiles_per_side; ++ty) {
    for (int tx = 0; tx < tiles_per_side; ++tx) {
      layout::Pattern copy = tile;
      copy.translate(tx * params.clip_nm, ty * params.clip_nm);
      for (const auto& rect : copy.rects()) {
        chip.add(rect);
      }
    }
  }
  return chip;
}

struct RunResult {
  int tiles = 0;
  long windows = 0;
  long unique_windows = 0;
  double dedup_hit_rate = 0.0;
  double eager_seconds = 0.0;
  double streaming_seconds = 0.0;
  double speedup = 0.0;
  long eager_bytes_proxy = 0;
  long streaming_bytes_proxy = 0;
  bool labels_match = false;
};

RunResult run_scan(core::BrnnModel& model, const dataset::PatternParams& params,
                   std::int64_t image_size, int tiles) {
  RunResult run;
  run.tiles = tiles;
  const layout::Pattern chip = build_tiled_chip(params, tiles);

  // Eager path: materialize every clip, build a dataset, one predict().
  util::Stopwatch eager_timer;
  const auto clips =
      layout::extract_clips(chip, params.clip_nm, params.clip_nm);
  dataset::HotspotDataset windows;
  windows.reserve(clips.size());
  for (const auto& clip : clips) {
    windows.add(dataset::ClipSample::from_image(clip.binary(image_size), 0,
                                                dataset::Family::kDenseLines));
  }
  const std::vector<int> eager_labels =
      core::predict_labels(model, windows, 64);
  run.eager_seconds = eager_timer.seconds();
  run.windows = static_cast<long>(clips.size());

  // Eager working set: every clip's rects plus the whole dataset's pixels
  // are alive at once before predict() starts, plus one inference batch
  // tensor while it runs.
  const long pixels = static_cast<long>(image_size * image_size);
  long eager_bytes = 0;
  for (const auto& clip : clips) {
    eager_bytes += static_cast<long>(clip.pattern.size() *
                                     sizeof(layout::Rect));
  }
  eager_bytes += static_cast<long>(clips.size()) * pixels;
  eager_bytes += std::min<long>(64, static_cast<long>(clips.size())) *
                 pixels * static_cast<long>(sizeof(float));
  run.eager_bytes_proxy = eager_bytes;

  // Streaming path: lazy windows, dedup, double-buffered batches.
  scan::ScanConfig config;
  config.window_nm = params.clip_nm;
  config.grid = image_size;
  scan::ScanPipeline pipeline(
      config, [&](const tensor::Tensor& images) {
        return model.predict(images);
      });
  const scan::ScanResult result = pipeline.scan(chip);
  run.streaming_seconds = result.stats.total_seconds;
  run.unique_windows = static_cast<long>(result.stats.unique_windows);
  run.dedup_hit_rate = result.stats.dedup_hit_rate();
  run.speedup = run.streaming_seconds > 0.0
                    ? run.eager_seconds / run.streaming_seconds
                    : 0.0;
  run.labels_match = result.labels == eager_labels;

  // Streaming working set: two in-flight batches (double buffer, each at
  // most batch_size *distinct* rasters), the dedup cache's distinct
  // rasters, and the per-window entry/label maps.
  const long batch_fill =
      std::min<long>(config.batch_size, std::max<long>(run.unique_windows, 1));
  run.streaming_bytes_proxy =
      2L * batch_fill * pixels * static_cast<long>(sizeof(float)) +
      run.unique_windows * pixels +
      run.windows * static_cast<long>(sizeof(std::int64_t) + sizeof(int));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  hotspot::bench::print_header(
      "Scan throughput: streaming (dedup + pipelined batching) vs eager",
      "full-chip deployment sweeps every clip window (Sec. 1, Eq. 3)");

  const std::int64_t image_size = hotspot::bench::bench_image_size();
  const hotspot::dataset::BenchmarkConfig config =
      hotspot::dataset::iccad2012_config(0.01, image_size);

  // An untrained model classifies exactly like a trained one for timing
  // purposes; skipping training keeps the bench about the scan path.
  hotspot::util::Rng rng(7);
  hotspot::core::BrnnModel model(
      hotspot::core::BrnnConfig::compact(image_size), rng);
  model.set_training(false);
  model.set_backend(hotspot::core::Backend::kPacked);
  // Warm up: packs the weights so neither path pays it inside the timer.
  model.forward(hotspot::tensor::Tensor({1, 1, image_size, image_size}));

  std::vector<int> sizes{4};
  if (!quick) {
    sizes.push_back(8);
  }
  hotspot::util::Table table(
      {"tiles", "windows", "unique", "hit rate", "eager s", "stream s",
       "speedup", "match"});
  std::vector<hotspot::bench::JsonObject> runs;
  bool all_match = true;
  for (const int tiles : sizes) {
    const RunResult run =
        run_scan(model, config.pattern, image_size, tiles);
    all_match = all_match && run.labels_match;
    table.add_row({std::to_string(run.tiles) + "x" + std::to_string(run.tiles),
                   std::to_string(run.windows),
                   std::to_string(run.unique_windows),
                   hotspot::util::format_double(100.0 * run.dedup_hit_rate, 1)
                       + "%",
                   hotspot::util::format_double(run.eager_seconds, 3),
                   hotspot::util::format_double(run.streaming_seconds, 3),
                   hotspot::util::format_double(run.speedup, 2) + "x",
                   run.labels_match ? "yes" : "NO"});
    hotspot::bench::JsonObject entry;
    entry.set("tiles", run.tiles)
        .set("windows", run.windows)
        .set("unique_windows", run.unique_windows)
        .set("dedup_hit_rate", run.dedup_hit_rate)
        .set("eager_seconds", run.eager_seconds)
        .set("streaming_seconds", run.streaming_seconds)
        .set("eager_windows_per_sec",
             run.eager_seconds > 0.0
                 ? static_cast<double>(run.windows) / run.eager_seconds
                 : 0.0)
        .set("streaming_windows_per_sec",
             run.streaming_seconds > 0.0
                 ? static_cast<double>(run.windows) / run.streaming_seconds
                 : 0.0)
        .set("speedup", run.speedup)
        .set("eager_bytes_proxy", run.eager_bytes_proxy)
        .set("streaming_bytes_proxy", run.streaming_bytes_proxy)
        .set("labels_match", run.labels_match);
    runs.push_back(entry);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nStreaming labels %s the eager baseline.\n",
              all_match ? "bit-identically match" : "DIVERGE FROM");

  hotspot::bench::JsonObject result;
  result.set("bench", "scan_throughput")
      .set("image_size", static_cast<long>(image_size))
      .set("quick", quick)
      .set("labels_match", all_match)
      .set_raw("runs", hotspot::bench::json_array(runs));
  hotspot::bench::write_json_result("BENCH_scan.json", result);
  return all_match ? 0 : 1;
}
