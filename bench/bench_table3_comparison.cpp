// Table 3: performance comparison with state-of-the-art hotspot detectors.
//
// Trains all four methods on the synthetic ICCAD-2012-like benchmark and
// prints the paper's table followed by the measured one. Expected shape:
// accuracy ordering SPIE'15 << ICCAD'16 < DAC'17 < Ours; ours the most
// accurate with a competitive false-alarm count. Absolute runtimes are CPU
// (the paper used a GTX 1060); the binarization speedup itself is measured
// at matched shapes in bench_fig1 and as the packed-vs-float model ratio
// printed at the end.
#include <algorithm>
#include <cstdio>

#include "baselines/adaboost_detector.h"
#include "baselines/dct_cnn.h"
#include "baselines/online_learner.h"
#include "bench_common.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Table 3: detector comparison",
      "SPIE'15 84.2%/2919FA, ICCAD'16 97.7%/4497FA, DAC'17 98.2%/3413FA, "
      "Ours 99.2%/2787FA (8x faster runtime than DAC'17)");

  const auto ls = bench::bench_image_size();
  dataset::BenchmarkConfig config =
      dataset::iccad2012_config(bench::bench_scale(), ls);
  const dataset::Benchmark data = dataset::generate_benchmark(config);
  std::printf("Benchmark: %zu train / %zu test clips at %ldpx\n\n",
              data.train.size(), data.test.size(), ls);

  util::Rng rng(2025);
  std::vector<eval::EvaluationRow> rows;
  auto run = [&](eval::Detector& detector) {
    util::Stopwatch timer;
    rows.push_back(eval::evaluate_detector(detector, data.train, data.test, rng));
    std::printf("  %-24s trained %.1fs, evaluated %.2fs\n",
                rows.back().method.c_str(), rows.back().train_seconds,
                rows.back().eval_seconds);
  };

  baselines::AdaBoostDetector spie{baselines::AdaBoostDetectorConfig{}};
  run(spie);
  baselines::OnlineLearnerDetector iccad{baselines::OnlineLearnerConfig{}};
  run(iccad);
  baselines::DctCnnDetector dac17{baselines::DctCnnConfig::compact(ls)};
  run(dac17);
  core::BnnDetectorConfig bnn_config = core::BnnDetectorConfig::compact(ls);
  // The comparison uses a slightly wider/longer-trained instance than the
  // CI default: BNN training at a few hundred samples is noisy, and the
  // paper's network is far wider still.
  bnn_config.model.stem_filters = 16;
  bnn_config.model.block_filters = {16, 32, 64};
  bnn_config.trainer.epochs = 15;
  core::BnnHotspotDetector ours(bnn_config);
  run(ours);

  std::printf("\nPaper (full ICCAD-2012 benchmark, GTX 1060):\n");
  util::Table paper({"Method", "FA#", "Runtime (s)", "ODST (s)", "Accu (%)"});
  paper.add_row({"SPIE'15", "2,919", "2672", "53112", "84.2"});
  paper.add_row({"ICCAD'16", "4,497", "1052", "70628", "97.7"});
  paper.add_row({"DAC'17", "3,413", "482", "59402", "98.2"});
  paper.add_row({"Ours", "2,787", "60", "52970", "99.2"});
  std::printf("%s\n", paper.to_string().c_str());

  std::printf("Measured (this run):\n%s\n",
              eval::comparison_table(rows).to_string().c_str());

  // The binarization speedup on the trained model itself: identical
  // network, float-sim arithmetic vs packed XNOR-popcount.
  auto& model = ours.model();
  model.set_training(false);
  const auto indices = data.test.all_indices();
  const std::vector<std::size_t> head(
      indices.begin(),
      indices.begin() + std::min<std::size_t>(indices.size(), 64));
  const tensor::Tensor images = data.test.batch_images(head);
  auto time_backend = [&](core::Backend backend) {
    model.set_backend(backend);
    model.forward(images);  // warm-up / cache packing
    util::Stopwatch timer;
    model.forward(images);
    return timer.seconds();
  };
  const double float_s = time_backend(core::Backend::kFloatSim);
  const double packed_s = time_backend(core::Backend::kPacked);
  std::printf("Same-model inference, %zu clips: float-sim %.3fs, packed "
              "XNOR-popcount %.3fs -> %.1fx\n",
              head.size(), float_s, packed_s, float_s / packed_s);
  std::printf("(Channel widths here are CI-scale %lld-%lld; bench_fig1 shows "
              "the ratio growing with width toward the paper's regime.)\n",
              static_cast<long long>(bnn_config.model.stem_filters),
              static_cast<long long>(bnn_config.model.block_filters.back()));

  // Thread scaling on the deployment path, next to the paper's 60 s figure:
  // the packed sweep at one pool thread vs the configured width.
  const int configured_threads = util::parallel_threads();
  model.set_backend(core::Backend::kPacked);
  util::set_parallel_threads(1);
  const double packed_1t = time_backend(core::Backend::kPacked);
  util::set_parallel_threads(std::max(configured_threads, 1));
  const double packed_mt = time_backend(core::Backend::kPacked);
  std::printf("Packed inference, %zu clips: 1 thread %.3fs, %d thread(s) "
              "%.3fs -> %.2fx (paper: 60 s full benchmark on a GTX 1060)\n",
              head.size(), packed_1t, configured_threads, packed_mt,
              packed_mt > 0.0 ? packed_1t / packed_mt : 0.0);

  std::vector<bench::JsonObject> measured;
  for (const auto& row : rows) {
    bench::JsonObject entry;
    entry.set("method", row.method)
        .set("false_alarms", static_cast<long>(row.matrix.false_alarm()))
        .set("train_seconds", row.train_seconds)
        .set("eval_seconds", row.eval_seconds)
        .set("accuracy", row.matrix.accuracy())
        .set("threads", row.threads);
    measured.push_back(entry);
  }
  bench::JsonObject result;
  result.set("bench", "table3_comparison")
      .set("image_size", ls)
      .set("scale", bench::bench_scale())
      .set("clips_timed", static_cast<long>(head.size()))
      .set("float_sim_seconds", float_s)
      .set("packed_seconds", packed_s)
      .set("packed_seconds_1_thread", packed_1t)
      .set("packed_seconds_multi_thread", packed_mt)
      .set("threads", configured_threads)
      .set("paper_runtime_seconds", 60.0)
      .set_raw("measured", bench::json_array(measured));
  bench::write_json_result("BENCH_table3.json", result);
  return 0;
}
