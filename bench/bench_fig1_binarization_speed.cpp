// Fig. 1: real-valued vs binarized networks.
//
// The figure contrasts 32-bit float weights/activations with 1-bit ones.
// This bench measures the two consequences at matched convolution shapes:
//   * arithmetic: float conv vs packed XNOR-popcount conv throughput,
//     swept over channel width (the ratio grows with width; the paper's 8x
//     lives in the wide-layer regime of its 12-layer network), and
//   * storage: 32x weight compression.
// Both input-scaling variants are measured: the paper's per-channel alpha_T
// (Eq. 14) and XNOR-Net's scalar alpha.
#include <benchmark/benchmark.h>

#include "bitops/bit_matrix.h"
#include "core/binary_conv.h"
#include "nn/conv_layer.h"
#include "tensor/conv.h"

namespace {

using namespace hotspot;

constexpr std::int64_t kSpatial = 16;

tensor::Tensor make_input(std::int64_t channels) {
  util::Rng rng(7);
  return tensor::Tensor::normal({1, channels, kSpatial, kSpatial}, rng, 0.0f,
                                1.0f);
}

void BM_FloatConv(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  util::Rng rng(1);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  conv.set_training(false);
  const tensor::Tensor x = make_input(channels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * channels * channels * 9 *
                          kSpatial * kSpatial);
}

void BM_BinaryConvPerChannel(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  util::Rng rng(1);
  core::BinaryConv2d conv(channels, channels, 3, 1, 1,
                          bitops::InputScaling::kPerChannel, rng);
  conv.set_training(false);
  conv.set_backend(core::Backend::kPacked);
  const tensor::Tensor x = make_input(channels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * channels * channels * 9 *
                          kSpatial * kSpatial);
}

void BM_BinaryConvScalar(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  util::Rng rng(1);
  core::BinaryConv2d conv(channels, channels, 3, 1, 1,
                          bitops::InputScaling::kScalar, rng);
  conv.set_training(false);
  conv.set_backend(core::Backend::kPacked);
  const tensor::Tensor x = make_input(channels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * channels * channels * 9 *
                          kSpatial * kSpatial);
}

void BM_WeightStorage(benchmark::State& state) {
  // Model-size side of Fig. 1: bytes for one conv layer's weights.
  const std::int64_t channels = state.range(0);
  util::Rng rng(1);
  const tensor::Tensor w =
      tensor::Tensor::normal({channels, channels, 3, 3}, rng, 0.0f, 1.0f);
  std::int64_t packed_bytes = 0;
  for (auto _ : state) {
    const bitops::BitMatrix packed = bitops::pack_filters(w);
    packed_bytes = packed.storage_bytes();
    benchmark::DoNotOptimize(packed_bytes);
  }
  state.counters["float_bytes"] =
      static_cast<double>(w.numel() * static_cast<std::int64_t>(sizeof(float)));
  state.counters["packed_bytes"] = static_cast<double>(packed_bytes);
  state.counters["compression"] =
      static_cast<double>(w.numel() * static_cast<std::int64_t>(sizeof(float))) /
      static_cast<double>(packed_bytes);
}

}  // namespace

BENCHMARK(BM_FloatConv)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryConvPerChannel)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryConvScalar)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WeightStorage)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
