// Thread-scaling harness for the binary inference hot path.
//
// Sweeps the pool width over batched BRNN inference (packed XNOR-popcount
// backend and the float-sim reference) plus the raw xnor_gemm kernel,
// checking that logits and predicted labels stay bit-identical at every
// thread count — the determinism guarantee of util::parallel_for — and
// emits BENCH_parallel.json so the perf trajectory is tracked run to run.
//
// Scale knobs: HOTSPOT_BENCH_SCALE / HOTSPOT_BENCH_LS (shared with the other
// benches), HOTSPOT_BENCH_REPEATS (timing repeats, best-of), and
// HOTSPOT_BENCH_THREADS (max pool width to sweep; defaults to the larger of
// 4 and the hardware concurrency).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bitops/xnor_gemm.h"
#include "core/brnn.h"
#include "dataset/generator.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace hotspot;

double best_of(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (!a.same_shape(b)) {
    return false;
  }
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "Parallel scaling: batched BRNN inference vs pool width",
      "60 s for the merged ICCAD-2012 benchmark (Table 3); speed is the "
      "paper's headline claim, so the reproduction tracks thread scaling");

  const auto ls = bench::bench_image_size();
  const auto repeats =
      static_cast<int>(bench::env_long("HOTSPOT_BENCH_REPEATS", 3));
  const unsigned hardware = std::thread::hardware_concurrency();
  const long max_threads = bench::env_long(
      "HOTSPOT_BENCH_THREADS",
      std::max(4L, static_cast<long>(hardware >= 1 ? hardware : 1)));

  // CI-scale workload: a generated clip batch through the compact BRNN.
  dataset::BenchmarkConfig config =
      dataset::iccad2012_config(bench::bench_scale(), ls);
  const dataset::Benchmark data = dataset::generate_benchmark(config);
  const auto indices = data.test.all_indices();
  const std::vector<std::size_t> head(
      indices.begin(),
      indices.begin() + std::min<std::size_t>(indices.size(), 64));
  const tensor::Tensor images = data.test.batch_images(head);

  util::Rng rng(0x5ca11ab1e);
  core::BrnnModel model(core::BrnnConfig::compact(ls), rng);
  model.set_training(false);

  std::vector<long> widths;
  for (long t = 1; t <= max_threads; t *= 2) {
    widths.push_back(t);
  }
  if (widths.back() != max_threads) {
    widths.push_back(max_threads);
  }

  // Raw kernel workload: a GEMM shaped like a mid-network binary conv layer.
  const std::int64_t gemm_rows = 2048;
  const std::int64_t gemm_filters = 64;
  const std::int64_t gemm_bits = 576;  // 64 channels * 3x3 patch
  tensor::Tensor patches_src({gemm_rows, gemm_bits});
  tensor::Tensor filters_src({gemm_filters, gemm_bits});
  for (std::int64_t i = 0; i < patches_src.numel(); ++i) {
    patches_src[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  }
  for (std::int64_t i = 0; i < filters_src.numel(); ++i) {
    filters_src[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  }
  const bitops::BitMatrix gemm_a = bitops::BitMatrix::pack_rows(patches_src);
  const bitops::BitMatrix gemm_b = bitops::BitMatrix::pack_rows(filters_src);

  std::printf("Workload: %zu clips at %ldpx, repeats=%d (best-of), "
              "hardware_concurrency=%u\n\n",
              head.size(), ls, repeats, hardware);
  std::printf("%8s %14s %14s %14s %10s\n", "threads", "packed (s)",
              "float-sim (s)", "xnor_gemm (s)", "identical");

  tensor::Tensor reference_packed;
  tensor::Tensor reference_float;
  std::vector<bench::JsonObject> sweep;
  bool all_identical = true;
  double packed_1t = 0.0;

  for (const long threads : widths) {
    util::set_parallel_threads(static_cast<int>(threads));

    model.set_backend(core::Backend::kPacked);
    model.forward(images);  // warm-up: packs the filter cache
    tensor::Tensor packed_logits;
    const double packed_s =
        best_of(repeats, [&] { packed_logits = model.forward(images); });

    model.set_backend(core::Backend::kFloatSim);
    model.forward(images);
    tensor::Tensor float_logits;
    const double float_s =
        best_of(repeats, [&] { float_logits = model.forward(images); });

    const double gemm_s =
        best_of(repeats, [&] { (void)bitops::xnor_gemm(gemm_a, gemm_b); });

    if (threads == widths.front()) {
      reference_packed = packed_logits;
      reference_float = float_logits;
      packed_1t = packed_s;
    }
    const bool identical = bit_identical(packed_logits, reference_packed) &&
                           bit_identical(float_logits, reference_float);
    all_identical = all_identical && identical;

    std::printf("%8ld %14.4f %14.4f %14.4f %10s\n", threads, packed_s,
                float_s, gemm_s, identical ? "yes" : "NO");

    bench::JsonObject entry;
    entry.set("threads", threads)
        .set("packed_seconds", packed_s)
        .set("float_sim_seconds", float_s)
        .set("xnor_gemm_seconds", gemm_s)
        .set("packed_speedup_vs_1t", packed_s > 0.0 ? packed_1t / packed_s
                                                    : 0.0)
        .set("bit_identical_vs_1t", identical);
    sweep.push_back(entry);
  }

  std::printf("\nDeterminism: logits %s across thread counts.\n",
              all_identical ? "bit-identical" : "DIVERGED");
  if (hardware < 4) {
    std::printf("(Only %u hardware thread(s) available: wall-clock speedup "
                "is bounded by the host; the sweep still validates "
                "determinism at every pool width.)\n",
                hardware);
  }

  bench::JsonObject result;
  result.set("bench", "parallel_scaling")
      .set("image_size", ls)
      .set("batch", static_cast<long>(head.size()))
      .set("repeats", repeats)
      .set("hardware_concurrency", static_cast<long>(hardware))
      .set("gemm_rows", static_cast<long>(gemm_rows))
      .set("gemm_filters", static_cast<long>(gemm_filters))
      .set("gemm_bits", static_cast<long>(gemm_bits))
      .set("bit_identical", all_identical)
      .set_raw("sweep", bench::json_array(sweep));
  bench::write_json_result("BENCH_parallel.json", result);

  return all_identical ? 0 : 1;
}
