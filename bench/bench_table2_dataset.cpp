// Table 2: ICCAD-2012 merged benchmark statistics.
//
// Regenerates the benchmark (scaled) and prints the paper's row next to the
// generated counts, plus the per-family / per-defect structure that defines
// the synthetic substitute (DESIGN.md).
#include <cstdio>

#include "bench_common.h"
#include "dataset/generator.h"
#include "litho/simulator.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Table 2: benchmark statistics",
      "ICCAD merged: 1204/17096 train HS/NHS, 2524/13503 test HS/NHS");

  const double scale = bench::bench_scale();
  dataset::BenchmarkConfig config =
      dataset::iccad2012_config(scale, bench::bench_image_size());
  util::Stopwatch timer;
  const dataset::Benchmark bench_data = dataset::generate_benchmark(config);
  const double gen_seconds = timer.seconds();

  util::Table table(
      {"Benchmark", "#Train HS", "#Train NHS", "#Test HS", "#Test NHS"});
  table.add_row({"ICCAD (paper)", "1,204", "17,096", "2,524", "13,503"});
  table.add_row({"Synthetic (this run)",
                 util::format_count(bench_data.train.stats().hotspots),
                 util::format_count(bench_data.train.stats().non_hotspots),
                 util::format_count(bench_data.test.stats().hotspots),
                 util::format_count(bench_data.test.stats().non_hotspots)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Generated in %.1f s (%.2f ms/labelled clip).\n\n", gen_seconds,
              1e3 * gen_seconds /
                  static_cast<double>(bench_data.train.size() +
                                      bench_data.test.size()));

  // Family composition: the train/test distribution shift that stands in
  // for the contest's unseen patterns.
  util::Table family_table({"Family", "Train HS", "Train NHS", "Test HS",
                            "Test NHS"});
  const auto train_families = bench_data.train.stats_by_family();
  const auto test_families = bench_data.test.stats_by_family();
  for (int f = 0; f < dataset::kFamilyCount; ++f) {
    family_table.add_row(
        {dataset::to_string(static_cast<dataset::Family>(f)),
         util::format_count(train_families[static_cast<std::size_t>(f)].hotspots),
         util::format_count(
             train_families[static_cast<std::size_t>(f)].non_hotspots),
         util::format_count(test_families[static_cast<std::size_t>(f)].hotspots),
         util::format_count(
             test_families[static_cast<std::size_t>(f)].non_hotspots)});
  }
  std::printf("%s\n", family_table.to_string().c_str());

  // Defect-mechanism mix of the hotspot class, from re-simulating fresh
  // candidates (the stored dataset keeps only labels).
  const litho::Simulator simulator(config.litho);
  util::Rng rng(123);
  int bridge = 0, open = 0, pinch = 0, neck = 0, hotspots = 0;
  const int candidates = 600;
  for (int i = 0; i < candidates; ++i) {
    const auto family = static_cast<dataset::Family>(i % dataset::kFamilyCount);
    layout::Clip clip{
        dataset::generate_pattern(family, config.pattern, rng),
        config.pattern.clip_nm};
    if (clip.pattern.empty()) {
      continue;
    }
    const auto result = simulator.simulate(clip);
    if (result.is_hotspot()) {
      ++hotspots;
      bridge += result.defects.bridge ? 1 : 0;
      open += result.defects.open ? 1 : 0;
      pinch += result.defects.pinch ? 1 : 0;
      neck += result.defects.necking ? 1 : 0;
    }
  }
  std::printf("Raw candidate hotspot rate: %.1f%% (%d / %d)\n",
              100.0 * hotspots / candidates, hotspots, candidates);
  std::printf("Defect mechanisms among hotspots: bridge %d, open %d, "
              "pinch %d, necking %d\n",
              bridge, open, pinch, neck);
  return 0;
}
