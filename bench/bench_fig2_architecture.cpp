// Fig. 2: the redesigned 12-layer binarized residual network.
//
// Prints the architecture table of the paper-scale configuration (layer
// structure, output shapes, parameter counts — including the 1x1 binary
// convolutions on shape-changing shortcuts), then times each top-level
// stage of the CI-scale instance under both execution backends.
#include <cstdio>

#include "bench_common.h"
#include "core/brnn.h"
#include "core/cost_model.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Fig. 2: BRNN architecture",
      "12 weight layers derived from ResNet-18; all convolutions binary; "
      "1x1 binary conv blocks on shape-changing shortcuts");

  // Paper-scale structure (128px inputs). Building the model is cheap; we
  // only trace shapes, not run the 128px forward on 1 CPU core.
  util::Rng rng(1);
  const core::BrnnConfig paper_config = core::BrnnConfig::paper();
  core::BrnnModel paper_model(paper_config, rng);
  std::printf("Paper-scale configuration (%lld weight layers on the main "
              "path, %lld binary convolutions total, %s input scaling):\n\n",
              static_cast<long long>(paper_config.main_path_layer_count()),
              static_cast<long long>(paper_model.binary_convs().size()),
              bitops::to_string(paper_config.scaling));
  util::Table structure({"#", "Stage", "Parameters"});
  const auto layers = paper_model.architecture();
  std::int64_t total_params = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const std::int64_t params = paper_model.net().at(i).parameter_count();
    total_params += params;
    structure.add_row({std::to_string(i), layers[i],
                       util::format_count(params)});
  }
  std::printf("%s", structure.to_string().c_str());
  std::printf("Total trainable parameters: %s (binary deployment stores "
              "conv weights as 1 bit each)\n\n",
              util::format_count(total_params).c_str());

  // Analytic per-layer cost of the paper-scale network: the 32-bit vs 1-bit
  // contrast of Fig. 1 applied to this architecture.
  const core::NetworkCost cost = core::network_cost(paper_config);
  util::Table ops({"Binary conv", "float MACs", "packed word ops",
                   "packed float ops"});
  for (const auto& layer : cost.layers) {
    ops.add_row({layer.name, util::format_count(layer.float_macs),
                 util::format_count(layer.packed_word_ops),
                 util::format_count(layer.packed_float_ops)});
  }
  std::printf("%s", ops.to_string().c_str());
  std::printf("Network totals: %s float MACs vs %s word + %s float ops "
              "packed -> %.1fx arithmetic reduction, %.1fx weight storage "
              "reduction\n\n",
              util::format_count(cost.float_macs).c_str(),
              util::format_count(cost.packed_word_ops).c_str(),
              util::format_count(cost.packed_float_ops).c_str(),
              cost.arithmetic_reduction(), cost.storage_reduction());

  // Per-stage latency of the CI-scale instance.
  const auto ls = bench::bench_image_size();
  util::Rng rng2(2);
  core::BrnnModel model(core::BrnnConfig::compact(ls), rng2);
  model.set_training(false);
  util::Rng data_rng(3);
  const tensor::Tensor x =
      tensor::Tensor::uniform({8, 1, ls, ls}, data_rng, 0.0f, 1.0f);

  util::Table latency({"Stage", "Output shape", "float-sim (ms)",
                       "packed (ms)", "speedup"});
  std::vector<double> float_ms;
  std::vector<std::string> shapes;
  for (const auto backend : {core::Backend::kFloatSim, core::Backend::kPacked}) {
    model.set_backend(backend);
    tensor::Tensor current = x;
    model.forward(x);  // warm caches
    current = x;
    for (std::size_t i = 0; i < model.net().size(); ++i) {
      util::Stopwatch timer;
      current = model.net().at(i).forward(current);
      const double ms = timer.milliseconds();
      if (backend == core::Backend::kFloatSim) {
        float_ms.push_back(ms);
        shapes.push_back(tensor::shape_to_string(current.shape()));
      } else {
        latency.add_row({model.net().at(i).name(), shapes[i],
                         util::format_double(float_ms[i], 2),
                         util::format_double(ms, 2),
                         util::format_double(ms > 0 ? float_ms[i] / ms : 0.0,
                                             1) + "x"});
      }
    }
  }
  std::printf("Per-stage forward latency, CI-scale model, batch 8 at %ldpx:\n%s",
              ls, latency.to_string().c_str());
  return 0;
}
