// Ablation: biased-learning epsilon (Sec. 3.4.3).
//
// After normal training the model is finetuned with non-hotspot targets
// smoothed to [1-eps, eps]. The paper sets eps = 0.2 and notes the method
// "improves the detecting accuracy but also increases the false alarms".
// This sweep reproduces that tradeoff curve.
#include <cstdio>

#include "bench_common.h"
#include "core/bnn_detector.h"
#include "nn/serialize.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace hotspot;
  bench::print_header(
      "Ablation: biased-learning epsilon",
      "eps = 0.2; bias learning 'improves the detecting accuracy but also "
      "increases the false alarms' (Sec. 3.4.3)");

  const auto ls = bench::bench_image_size();
  const dataset::Benchmark data = dataset::generate_benchmark(
      dataset::iccad2012_config(bench::bench_scale(), ls));

  // Train ONE base model (the Algorithm-1 phase), then apply the biased
  // finetune with each eps to copies of it — isolating the label-smoothing
  // effect from training noise, which is exactly how the paper applies
  // biased learning ("the trained model is finetuned ...").
  const core::BnnDetectorConfig base_config =
      core::BnnDetectorConfig::compact(ls);
  util::Rng init_rng(9);
  core::BrnnModel base(base_config.model, init_rng);
  {
    core::TrainerConfig main_phase = base_config.trainer;
    main_phase.finetune_epochs = 0;
    main_phase.seed = 17;
    core::Trainer trainer(base, main_phase);
    trainer.train(data.train);
  }
  const std::string snapshot = "/tmp/hotspot_bias_base.bin";
  if (!nn::save_checkpoint(snapshot, base)) {
    std::printf("cannot write %s\n", snapshot.c_str());
    return 1;
  }
  std::printf("  base model trained\n");

  util::Table table({"eps", "Accu (%)", "FA#"});
  for (const float eps : {0.0f, 0.1f, 0.2f, 0.3f}) {
    util::Rng rng(1);
    core::BrnnModel model(base_config.model, rng);
    if (!nn::load_checkpoint(snapshot, model)) {
      return 1;
    }
    core::TrainerConfig finetune = base_config.trainer;
    finetune.epochs = 0;
    finetune.finetune_epochs = 2;
    finetune.bias_epsilon = eps;
    finetune.learning_rate = 0.003f;
    finetune.seed = 23;  // identical batches for every eps
    core::Trainer trainer(model, finetune);
    trainer.train(data.train);
    model.set_backend(core::Backend::kPacked);
    const auto predictions = core::predict_labels(model, data.test, 64);
    const auto matrix = eval::confusion(
        data.test.batch_labels(data.test.all_indices()), predictions);
    table.add_row({util::format_double(static_cast<double>(eps), 1),
                   util::format_double(matrix.accuracy() * 100.0, 1),
                   util::format_count(matrix.false_alarm())});
    std::printf("  finished eps = %.1f\n", static_cast<double>(eps));
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("Expected shape: accuracy (hotspot recall) rises with eps and "
              "false alarms rise with it — the paper's stated tradeoff.\n");
  return 0;
}
