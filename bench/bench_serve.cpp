// Serving load test (DESIGN.md §15): an in-process Server on an ephemeral
// port, hammered by N concurrent client connections. Reports sustained
// clips/sec and request-latency percentiles, and cross-checks every served
// label against direct model inference (bit_identical must stay true —
// micro-batching across clients is not allowed to change a single label).
//
//   ./bench/bench_serve [--quick]
//
// --quick shrinks the request count for the CI leg. Emits BENCH_serve.json;
// bench_compare gates clips_per_second / p99_seconds against
// bench/baselines/BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/brnn.h"
#include "nn/serialize.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace hotspot;
using tensor::Shape;
using tensor::Tensor;

Tensor random_clips(unsigned seed, std::int64_t count, std::int64_t grid) {
  Tensor images(Shape{count, 1, grid, grid});
  unsigned state = seed * 2654435761u + 29;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto index = static_cast<std::size_t>(rank);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  const std::int64_t grid = bench::bench_image_size();
  const int kClients = 4;
  const long kRequests = quick ? 25 : 150;
  const std::int64_t kClips = 8;

  bench::print_header(
      "Serving throughput: micro-batched detection server, 4 clients",
      "n/a (serving-path extension; gate tracks clips/sec and p99)");

  // Random weights suffice: the serving path is identical for trained and
  // untrained models, and label cross-checking only needs determinism.
  const std::string model_path = "/tmp/bench_serve_model.bin";
  {
    util::Rng rng(0xbe9c);
    core::BrnnModel model(core::BrnnConfig::compact(grid), rng);
    if (!nn::save_checkpoint(model_path, model).ok()) {
      std::fprintf(stderr, "cannot write %s\n", model_path.c_str());
      return 1;
    }
  }
  serve::ModelRegistry registry;
  if (!registry.load(model_path, grid).ok()) {
    std::fprintf(stderr, "cannot load %s\n", model_path.c_str());
    return 1;
  }
  serve::ServerConfig config;
  config.batcher.max_batch_clips = 64;
  config.batcher.max_queue_clips = 512;
  config.batcher.batch_deadline = std::chrono::microseconds(2000);
  serve::Server server(config, &registry);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }

  // References computed directly against the model, before any load.
  const std::shared_ptr<serve::ServableModel> model = registry.active();
  std::vector<std::vector<std::vector<int>>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (long r = 0; r < kRequests; ++r) {
      const unsigned seed = static_cast<unsigned>(c * 100003 + r + 1);
      expected[static_cast<std::size_t>(c)].push_back(
          model->predict(random_clips(seed, kClips, grid)));
    }
  }

  std::atomic<long> completed{0};
  std::atomic<long> shed{0};
  std::atomic<long> mismatches{0};
  std::atomic<long> failures{0};
  std::vector<std::vector<double>> latencies(kClients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      serve::ServeClient client;
      std::string client_error;
      if (!client.connect("127.0.0.1", server.bound_port(),
                          &client_error)) {
        failures += kRequests;
        return;
      }
      auto& bucket = latencies[static_cast<std::size_t>(c)];
      bucket.reserve(static_cast<std::size_t>(kRequests));
      for (long r = 0; r < kRequests; ++r) {
        const unsigned seed = static_cast<unsigned>(c * 100003 + r + 1);
        const Tensor images = random_clips(seed, kClips, grid);
        serve::PredictOutcome outcome;
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.predict("bench-" + std::to_string(c), images, &outcome,
                            &client_error)) {
          ++failures;
          return;
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (!outcome.ok) {
          if (outcome.reason == serve::RejectReason::kQueueFull) {
            ++shed;  // legal under pressure; not a failure
          } else {
            ++failures;
          }
          continue;
        }
        bucket.push_back(std::chrono::duration<double>(t1 - t0).count());
        ++completed;
        if (outcome.labels != expected[static_cast<std::size_t>(c)]
                                      [static_cast<std::size_t>(r)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.stop();

  std::vector<double> all;
  for (const auto& bucket : latencies) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end());
  const double clips_per_second =
      elapsed > 0.0 ? static_cast<double>(completed.load()) *
                          static_cast<double>(kClips) / elapsed
                    : 0.0;
  const bool bit_identical = mismatches.load() == 0 && completed.load() > 0;

  std::printf("clients=%d requests_ok=%ld shed=%ld failed=%ld\n", kClients,
              completed.load(), shed.load(), failures.load());
  std::printf("clips/sec=%.1f p50=%.6fs p95=%.6fs p99=%.6fs\n",
              clips_per_second, percentile(all, 0.50),
              percentile(all, 0.95), percentile(all, 0.99));
  std::printf("bit_identical=%s\n", bit_identical ? "true" : "false");

  bench::JsonObject result;
  result.set("bench", "serve");
  result.set("image_size", static_cast<long>(grid));
  result.set("quick", quick);
  result.set("clients", kClients);
  result.set("requests_per_client", kRequests);
  result.set("clips_per_request", static_cast<long>(kClips));
  result.set("requests_ok", completed.load());
  result.set("shed", shed.load());
  result.set("failures", failures.load());
  result.set("elapsed_seconds", elapsed);
  result.set("clips_per_second", clips_per_second);
  result.set("p50_seconds", percentile(all, 0.50));
  result.set("p95_seconds", percentile(all, 0.95));
  result.set("p99_seconds", percentile(all, 0.99));
  result.set("bit_identical", bit_identical);
  if (!bench::write_json_result("BENCH_serve.json", result)) {
    return 1;
  }
  return (failures.load() == 0 && bit_identical) ? 0 : 1;
}
