// XNOR kernel micro-benchmark: raw word throughput of each compiled +
// CPU-supported kernel's three primitives, reported as words/sec (one word
// = one 64-bit XOR + popcount + accumulate) plus the speedup over the
// scalar reference. Emits BENCH_kernels.json for the bench_compare gate.
//
// The workload mirrors the paper-config hot loops: 72-word rows for the
// GEMM primitives (a 512-channel 3x3 patch = 4608 bits) and 256 one-word
// channels for weighted_sum (the channel-blocked Eq. 14/15 path).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bitops/kernels/xnor_kernel.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using hotspot::bitops::XnorKernel;

constexpr std::int64_t kGemmWords = 72;       // 512ch x 3x3 = 4608 bits
constexpr std::int64_t kWeightedChannels = 256;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::uint64_t> random_words(hotspot::util::Rng& rng,
                                        std::int64_t count) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(count));
  for (auto& word : words) {
    word = rng.next_u64();
  }
  return words;
}

// Runs `body` (which processes `words_per_call` word ops and returns a
// value folded into the sink) until ~0.25 s elapsed, after a warmup;
// returns words/sec.
template <typename Body>
double measure_words_per_sec(std::int64_t words_per_call, Body body,
                             std::int64_t& sink) {
  for (int i = 0; i < 100; ++i) {
    sink += body();
  }
  std::int64_t calls = 0;
  const double start = now_seconds();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 256; ++i) {
      sink += body();
    }
    calls += 256;
    elapsed = now_seconds() - start;
  } while (elapsed < 0.25);
  return static_cast<double>(calls) * static_cast<double>(words_per_call) /
         elapsed;
}

struct KernelRates {
  double dot = 0.0;          // xor_popcount
  double gemm = 0.0;         // xor_popcount_2x4 (8 dots per call)
  double weighted = 0.0;     // weighted_sum
  double weighted_x4 = 0.0;  // weighted_sum_x4 (4 filters per call)
};

KernelRates measure_kernel(const XnorKernel& kernel) {
  hotspot::util::Rng rng(2024);
  const auto a0 = random_words(rng, kGemmWords);
  const auto a1 = random_words(rng, kGemmWords);
  const auto b0 = random_words(rng, kGemmWords);
  const auto b1 = random_words(rng, kGemmWords);
  const auto b2 = random_words(rng, kGemmWords);
  const auto b3 = random_words(rng, kGemmWords);
  // Weighted path: channel count padded the way BinaryConv2d pads it.
  const std::int64_t padded =
      (kWeightedChannels + kernel.word_multiple - 1) / kernel.word_multiple *
      kernel.word_multiple;
  const auto wa = random_words(rng, padded);
  const auto wb = random_words(rng, padded);
  std::vector<float> alpha(static_cast<std::size_t>(padded), 0.0f);
  for (std::int64_t c = 0; c < kWeightedChannels; ++c) {
    alpha[static_cast<std::size_t>(c)] =
        static_cast<float>(rng.uniform(0.1, 1.0));
  }

  KernelRates rates;
  std::int64_t sink = 0;
  rates.dot = measure_words_per_sec(
      kGemmWords,
      [&] { return kernel.xor_popcount(a0.data(), b0.data(), kGemmWords); },
      sink);
  rates.gemm = measure_words_per_sec(
      8 * kGemmWords,
      [&] {
        std::int64_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        kernel.xor_popcount_2x4(a0.data(), a1.data(), b0.data(), b1.data(),
                                b2.data(), b3.data(), kGemmWords, acc);
        return acc[0] + acc[7];
      },
      sink);
  rates.weighted = measure_words_per_sec(
      padded,
      [&] {
        return static_cast<std::int64_t>(kernel.weighted_sum(
            wa.data(), wb.data(), alpha.data(), padded, 9.0f));
      },
      sink);
  const auto wb1 = random_words(rng, padded);
  const auto wb2 = random_words(rng, padded);
  const auto wb3 = random_words(rng, padded);
  rates.weighted_x4 = measure_words_per_sec(
      4 * padded,
      [&] {
        float quad[4];
        kernel.weighted_sum_x4(wa.data(), wb.data(), wb1.data(), wb2.data(),
                               wb3.data(), alpha.data(), padded, 9.0f, quad);
        return static_cast<std::int64_t>(quad[0] + quad[3]);
      },
      sink);
  if (sink == 42) {  // defeats dead-code elimination of the timed bodies
    std::printf("sink %lld\n", static_cast<long long>(sink));
  }
  return rates;
}

}  // namespace

int main() {
  using hotspot::bench::JsonObject;
  hotspot::bench::print_header(
      "XNOR kernel word throughput (dispatch table, per-kernel)",
      "binarized conv runs as XNOR+popcount at SIMD width");

  const auto& kernels = hotspot::bitops::compiled_xnor_kernels();
  hotspot::util::Table table(
      {"kernel", "simd_bits", "dot Gw/s", "gemm2x4 Gw/s", "weighted Gw/s",
       "weighted_x4 Gw/s", "gemm speedup"});
  JsonObject result;
  result.set("gemm_words", static_cast<long>(kGemmWords));
  result.set("weighted_channels", static_cast<long>(kWeightedChannels));

  KernelRates scalar_rates;
  int measured = 0;
  for (const XnorKernel* kernel : kernels) {
    if (!hotspot::bitops::xnor_kernel_cpu_supported(*kernel)) {
      std::printf("[skip] kernel '%s': not supported by this CPU\n",
                  kernel->name);
      continue;
    }
    const KernelRates rates = measure_kernel(*kernel);
    if (std::string(kernel->name) == "scalar") {
      scalar_rates = rates;
    }
    const double speedup =
        scalar_rates.gemm > 0.0 ? rates.gemm / scalar_rates.gemm : 0.0;
    table.add_row({kernel->name, std::to_string(kernel->simd_bits),
                   std::to_string(rates.dot / 1e9),
                   std::to_string(rates.gemm / 1e9),
                   std::to_string(rates.weighted / 1e9),
                   std::to_string(rates.weighted_x4 / 1e9),
                   std::to_string(speedup)});
    const std::string prefix = kernel->name;
    result.set(prefix + "_dot_words_per_sec", rates.dot);
    result.set(prefix + "_gemm_words_per_sec", rates.gemm);
    result.set(prefix + "_weighted_words_per_sec", rates.weighted);
    result.set(prefix + "_weighted_x4_words_per_sec", rates.weighted_x4);
    if (std::string(kernel->name) != "scalar") {
      result.set(prefix + "_gemm_speedup", speedup);
      result.set(prefix + "_weighted_speedup",
                 scalar_rates.weighted > 0.0
                     ? rates.weighted / scalar_rates.weighted
                     : 0.0);
      result.set(prefix + "_weighted_x4_speedup",
                 scalar_rates.weighted_x4 > 0.0
                     ? rates.weighted_x4 / scalar_rates.weighted_x4
                     : 0.0);
    }
    ++measured;
  }
  result.set("kernels_measured", measured);
  std::printf("%s\n", table.to_string().c_str());

  hotspot::bench::write_json_result("BENCH_kernels.json", result);
  return 0;
}
