
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/evaluation_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/evaluation_test.cpp.o.d"
  "/root/repo/tests/eval/metrics_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hotspot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hotspot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hotspot_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/hotspot_features.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/hotspot_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hotspot_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hotspot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hotspot_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hotspot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/bitops/CMakeFiles/hotspot_bitops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
