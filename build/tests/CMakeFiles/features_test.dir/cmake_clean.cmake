file(REMOVE_RECURSE
  "CMakeFiles/features_test.dir/features/ccs_test.cpp.o"
  "CMakeFiles/features_test.dir/features/ccs_test.cpp.o.d"
  "CMakeFiles/features_test.dir/features/dct_tensor_test.cpp.o"
  "CMakeFiles/features_test.dir/features/dct_tensor_test.cpp.o.d"
  "CMakeFiles/features_test.dir/features/density_test.cpp.o"
  "CMakeFiles/features_test.dir/features/density_test.cpp.o.d"
  "CMakeFiles/features_test.dir/features/mutual_information_test.cpp.o"
  "CMakeFiles/features_test.dir/features/mutual_information_test.cpp.o.d"
  "features_test"
  "features_test.pdb"
  "features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
