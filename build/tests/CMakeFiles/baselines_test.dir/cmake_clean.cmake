file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines/adaboost_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/adaboost_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/dct_cnn_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/dct_cnn_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/decision_tree_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/decision_tree_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/online_learner_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/online_learner_test.cpp.o.d"
  "baselines_test"
  "baselines_test.pdb"
  "baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
