# Empty compiler generated dependencies file for hotspot_eval.
# This may be replaced when dependencies are built.
