file(REMOVE_RECURSE
  "libhotspot_eval.a"
)
