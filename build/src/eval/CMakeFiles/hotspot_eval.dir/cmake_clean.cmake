file(REMOVE_RECURSE
  "CMakeFiles/hotspot_eval.dir/detector.cpp.o"
  "CMakeFiles/hotspot_eval.dir/detector.cpp.o.d"
  "CMakeFiles/hotspot_eval.dir/evaluation.cpp.o"
  "CMakeFiles/hotspot_eval.dir/evaluation.cpp.o.d"
  "CMakeFiles/hotspot_eval.dir/metrics.cpp.o"
  "CMakeFiles/hotspot_eval.dir/metrics.cpp.o.d"
  "libhotspot_eval.a"
  "libhotspot_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
