
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/detector.cpp" "src/eval/CMakeFiles/hotspot_eval.dir/detector.cpp.o" "gcc" "src/eval/CMakeFiles/hotspot_eval.dir/detector.cpp.o.d"
  "/root/repo/src/eval/evaluation.cpp" "src/eval/CMakeFiles/hotspot_eval.dir/evaluation.cpp.o" "gcc" "src/eval/CMakeFiles/hotspot_eval.dir/evaluation.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/hotspot_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/hotspot_eval.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/hotspot_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hotspot_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hotspot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
