file(REMOVE_RECURSE
  "libhotspot_nn.a"
)
