
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation_layers.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/activation_layers.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/activation_layers.cpp.o.d"
  "/root/repo/src/nn/batchnorm_layer.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/batchnorm_layer.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/batchnorm_layer.cpp.o.d"
  "/root/repo/src/nn/conv_layer.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/conv_layer.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/conv_layer.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear_layer.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/linear_layer.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/linear_layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/pool_layers.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/pool_layers.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/pool_layers.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/hotspot_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/hotspot_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
