file(REMOVE_RECURSE
  "CMakeFiles/hotspot_nn.dir/activation_layers.cpp.o"
  "CMakeFiles/hotspot_nn.dir/activation_layers.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/batchnorm_layer.cpp.o"
  "CMakeFiles/hotspot_nn.dir/batchnorm_layer.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/conv_layer.cpp.o"
  "CMakeFiles/hotspot_nn.dir/conv_layer.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/init.cpp.o"
  "CMakeFiles/hotspot_nn.dir/init.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/linear_layer.cpp.o"
  "CMakeFiles/hotspot_nn.dir/linear_layer.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/loss.cpp.o"
  "CMakeFiles/hotspot_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/module.cpp.o"
  "CMakeFiles/hotspot_nn.dir/module.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/pool_layers.cpp.o"
  "CMakeFiles/hotspot_nn.dir/pool_layers.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/residual.cpp.o"
  "CMakeFiles/hotspot_nn.dir/residual.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/sequential.cpp.o"
  "CMakeFiles/hotspot_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/hotspot_nn.dir/serialize.cpp.o"
  "CMakeFiles/hotspot_nn.dir/serialize.cpp.o.d"
  "libhotspot_nn.a"
  "libhotspot_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
