# Empty compiler generated dependencies file for hotspot_nn.
# This may be replaced when dependencies are built.
