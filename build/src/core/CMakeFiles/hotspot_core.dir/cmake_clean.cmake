file(REMOVE_RECURSE
  "CMakeFiles/hotspot_core.dir/binary_conv.cpp.o"
  "CMakeFiles/hotspot_core.dir/binary_conv.cpp.o.d"
  "CMakeFiles/hotspot_core.dir/bnn_detector.cpp.o"
  "CMakeFiles/hotspot_core.dir/bnn_detector.cpp.o.d"
  "CMakeFiles/hotspot_core.dir/brnn.cpp.o"
  "CMakeFiles/hotspot_core.dir/brnn.cpp.o.d"
  "CMakeFiles/hotspot_core.dir/cost_model.cpp.o"
  "CMakeFiles/hotspot_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/hotspot_core.dir/trainer.cpp.o"
  "CMakeFiles/hotspot_core.dir/trainer.cpp.o.d"
  "libhotspot_core.a"
  "libhotspot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
