# Empty dependencies file for hotspot_core.
# This may be replaced when dependencies are built.
