file(REMOVE_RECURSE
  "libhotspot_core.a"
)
