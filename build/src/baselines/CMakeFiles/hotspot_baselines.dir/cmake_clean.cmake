file(REMOVE_RECURSE
  "CMakeFiles/hotspot_baselines.dir/adaboost.cpp.o"
  "CMakeFiles/hotspot_baselines.dir/adaboost.cpp.o.d"
  "CMakeFiles/hotspot_baselines.dir/adaboost_detector.cpp.o"
  "CMakeFiles/hotspot_baselines.dir/adaboost_detector.cpp.o.d"
  "CMakeFiles/hotspot_baselines.dir/dct_cnn.cpp.o"
  "CMakeFiles/hotspot_baselines.dir/dct_cnn.cpp.o.d"
  "CMakeFiles/hotspot_baselines.dir/decision_tree.cpp.o"
  "CMakeFiles/hotspot_baselines.dir/decision_tree.cpp.o.d"
  "CMakeFiles/hotspot_baselines.dir/online_learner.cpp.o"
  "CMakeFiles/hotspot_baselines.dir/online_learner.cpp.o.d"
  "libhotspot_baselines.a"
  "libhotspot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
