file(REMOVE_RECURSE
  "libhotspot_baselines.a"
)
