# Empty dependencies file for hotspot_baselines.
# This may be replaced when dependencies are built.
