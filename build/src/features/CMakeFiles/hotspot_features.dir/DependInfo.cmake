
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/ccs.cpp" "src/features/CMakeFiles/hotspot_features.dir/ccs.cpp.o" "gcc" "src/features/CMakeFiles/hotspot_features.dir/ccs.cpp.o.d"
  "/root/repo/src/features/dct_tensor.cpp" "src/features/CMakeFiles/hotspot_features.dir/dct_tensor.cpp.o" "gcc" "src/features/CMakeFiles/hotspot_features.dir/dct_tensor.cpp.o.d"
  "/root/repo/src/features/density.cpp" "src/features/CMakeFiles/hotspot_features.dir/density.cpp.o" "gcc" "src/features/CMakeFiles/hotspot_features.dir/density.cpp.o.d"
  "/root/repo/src/features/mutual_information.cpp" "src/features/CMakeFiles/hotspot_features.dir/mutual_information.cpp.o" "gcc" "src/features/CMakeFiles/hotspot_features.dir/mutual_information.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/hotspot_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hotspot_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hotspot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
