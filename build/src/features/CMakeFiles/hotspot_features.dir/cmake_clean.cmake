file(REMOVE_RECURSE
  "CMakeFiles/hotspot_features.dir/ccs.cpp.o"
  "CMakeFiles/hotspot_features.dir/ccs.cpp.o.d"
  "CMakeFiles/hotspot_features.dir/dct_tensor.cpp.o"
  "CMakeFiles/hotspot_features.dir/dct_tensor.cpp.o.d"
  "CMakeFiles/hotspot_features.dir/density.cpp.o"
  "CMakeFiles/hotspot_features.dir/density.cpp.o.d"
  "CMakeFiles/hotspot_features.dir/mutual_information.cpp.o"
  "CMakeFiles/hotspot_features.dir/mutual_information.cpp.o.d"
  "libhotspot_features.a"
  "libhotspot_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
