file(REMOVE_RECURSE
  "libhotspot_features.a"
)
