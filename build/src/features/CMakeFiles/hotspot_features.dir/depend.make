# Empty dependencies file for hotspot_features.
# This may be replaced when dependencies are built.
