file(REMOVE_RECURSE
  "CMakeFiles/hotspot_optim.dir/adam.cpp.o"
  "CMakeFiles/hotspot_optim.dir/adam.cpp.o.d"
  "CMakeFiles/hotspot_optim.dir/lr_scheduler.cpp.o"
  "CMakeFiles/hotspot_optim.dir/lr_scheduler.cpp.o.d"
  "CMakeFiles/hotspot_optim.dir/nadam.cpp.o"
  "CMakeFiles/hotspot_optim.dir/nadam.cpp.o.d"
  "CMakeFiles/hotspot_optim.dir/optimizer.cpp.o"
  "CMakeFiles/hotspot_optim.dir/optimizer.cpp.o.d"
  "CMakeFiles/hotspot_optim.dir/sgd.cpp.o"
  "CMakeFiles/hotspot_optim.dir/sgd.cpp.o.d"
  "libhotspot_optim.a"
  "libhotspot_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
