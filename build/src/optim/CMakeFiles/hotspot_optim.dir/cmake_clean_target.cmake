file(REMOVE_RECURSE
  "libhotspot_optim.a"
)
