# Empty compiler generated dependencies file for hotspot_optim.
# This may be replaced when dependencies are built.
