# Empty dependencies file for hotspot_dataset.
# This may be replaced when dependencies are built.
