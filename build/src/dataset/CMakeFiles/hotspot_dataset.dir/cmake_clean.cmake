file(REMOVE_RECURSE
  "CMakeFiles/hotspot_dataset.dir/dataset.cpp.o"
  "CMakeFiles/hotspot_dataset.dir/dataset.cpp.o.d"
  "CMakeFiles/hotspot_dataset.dir/generator.cpp.o"
  "CMakeFiles/hotspot_dataset.dir/generator.cpp.o.d"
  "CMakeFiles/hotspot_dataset.dir/patterns.cpp.o"
  "CMakeFiles/hotspot_dataset.dir/patterns.cpp.o.d"
  "CMakeFiles/hotspot_dataset.dir/sample.cpp.o"
  "CMakeFiles/hotspot_dataset.dir/sample.cpp.o.d"
  "libhotspot_dataset.a"
  "libhotspot_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
