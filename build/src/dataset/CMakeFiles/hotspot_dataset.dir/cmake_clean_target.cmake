file(REMOVE_RECURSE
  "libhotspot_dataset.a"
)
