
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/dataset.cpp" "src/dataset/CMakeFiles/hotspot_dataset.dir/dataset.cpp.o" "gcc" "src/dataset/CMakeFiles/hotspot_dataset.dir/dataset.cpp.o.d"
  "/root/repo/src/dataset/generator.cpp" "src/dataset/CMakeFiles/hotspot_dataset.dir/generator.cpp.o" "gcc" "src/dataset/CMakeFiles/hotspot_dataset.dir/generator.cpp.o.d"
  "/root/repo/src/dataset/patterns.cpp" "src/dataset/CMakeFiles/hotspot_dataset.dir/patterns.cpp.o" "gcc" "src/dataset/CMakeFiles/hotspot_dataset.dir/patterns.cpp.o.d"
  "/root/repo/src/dataset/sample.cpp" "src/dataset/CMakeFiles/hotspot_dataset.dir/sample.cpp.o" "gcc" "src/dataset/CMakeFiles/hotspot_dataset.dir/sample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litho/CMakeFiles/hotspot_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hotspot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
