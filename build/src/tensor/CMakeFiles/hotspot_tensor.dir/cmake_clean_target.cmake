file(REMOVE_RECURSE
  "libhotspot_tensor.a"
)
