file(REMOVE_RECURSE
  "CMakeFiles/hotspot_tensor.dir/conv.cpp.o"
  "CMakeFiles/hotspot_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/hotspot_tensor.dir/dct.cpp.o"
  "CMakeFiles/hotspot_tensor.dir/dct.cpp.o.d"
  "CMakeFiles/hotspot_tensor.dir/pool.cpp.o"
  "CMakeFiles/hotspot_tensor.dir/pool.cpp.o.d"
  "CMakeFiles/hotspot_tensor.dir/tensor.cpp.o"
  "CMakeFiles/hotspot_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/hotspot_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/hotspot_tensor.dir/tensor_ops.cpp.o.d"
  "libhotspot_tensor.a"
  "libhotspot_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
