# Empty compiler generated dependencies file for hotspot_tensor.
# This may be replaced when dependencies are built.
