# Empty dependencies file for hotspot_litho.
# This may be replaced when dependencies are built.
