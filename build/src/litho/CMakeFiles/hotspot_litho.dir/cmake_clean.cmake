file(REMOVE_RECURSE
  "CMakeFiles/hotspot_litho.dir/components.cpp.o"
  "CMakeFiles/hotspot_litho.dir/components.cpp.o.d"
  "CMakeFiles/hotspot_litho.dir/defects.cpp.o"
  "CMakeFiles/hotspot_litho.dir/defects.cpp.o.d"
  "CMakeFiles/hotspot_litho.dir/optics.cpp.o"
  "CMakeFiles/hotspot_litho.dir/optics.cpp.o.d"
  "CMakeFiles/hotspot_litho.dir/simulator.cpp.o"
  "CMakeFiles/hotspot_litho.dir/simulator.cpp.o.d"
  "libhotspot_litho.a"
  "libhotspot_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
