
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/components.cpp" "src/litho/CMakeFiles/hotspot_litho.dir/components.cpp.o" "gcc" "src/litho/CMakeFiles/hotspot_litho.dir/components.cpp.o.d"
  "/root/repo/src/litho/defects.cpp" "src/litho/CMakeFiles/hotspot_litho.dir/defects.cpp.o" "gcc" "src/litho/CMakeFiles/hotspot_litho.dir/defects.cpp.o.d"
  "/root/repo/src/litho/optics.cpp" "src/litho/CMakeFiles/hotspot_litho.dir/optics.cpp.o" "gcc" "src/litho/CMakeFiles/hotspot_litho.dir/optics.cpp.o.d"
  "/root/repo/src/litho/simulator.cpp" "src/litho/CMakeFiles/hotspot_litho.dir/simulator.cpp.o" "gcc" "src/litho/CMakeFiles/hotspot_litho.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hotspot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
