file(REMOVE_RECURSE
  "libhotspot_litho.a"
)
