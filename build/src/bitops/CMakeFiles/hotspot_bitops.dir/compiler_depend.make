# Empty compiler generated dependencies file for hotspot_bitops.
# This may be replaced when dependencies are built.
