
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitops/bit_matrix.cpp" "src/bitops/CMakeFiles/hotspot_bitops.dir/bit_matrix.cpp.o" "gcc" "src/bitops/CMakeFiles/hotspot_bitops.dir/bit_matrix.cpp.o.d"
  "/root/repo/src/bitops/scaling.cpp" "src/bitops/CMakeFiles/hotspot_bitops.dir/scaling.cpp.o" "gcc" "src/bitops/CMakeFiles/hotspot_bitops.dir/scaling.cpp.o.d"
  "/root/repo/src/bitops/xnor_gemm.cpp" "src/bitops/CMakeFiles/hotspot_bitops.dir/xnor_gemm.cpp.o" "gcc" "src/bitops/CMakeFiles/hotspot_bitops.dir/xnor_gemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
