file(REMOVE_RECURSE
  "CMakeFiles/hotspot_bitops.dir/bit_matrix.cpp.o"
  "CMakeFiles/hotspot_bitops.dir/bit_matrix.cpp.o.d"
  "CMakeFiles/hotspot_bitops.dir/scaling.cpp.o"
  "CMakeFiles/hotspot_bitops.dir/scaling.cpp.o.d"
  "CMakeFiles/hotspot_bitops.dir/xnor_gemm.cpp.o"
  "CMakeFiles/hotspot_bitops.dir/xnor_gemm.cpp.o.d"
  "libhotspot_bitops.a"
  "libhotspot_bitops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
