file(REMOVE_RECURSE
  "libhotspot_bitops.a"
)
