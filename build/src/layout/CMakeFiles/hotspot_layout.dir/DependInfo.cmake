
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/clip.cpp" "src/layout/CMakeFiles/hotspot_layout.dir/clip.cpp.o" "gcc" "src/layout/CMakeFiles/hotspot_layout.dir/clip.cpp.o.d"
  "/root/repo/src/layout/geometry.cpp" "src/layout/CMakeFiles/hotspot_layout.dir/geometry.cpp.o" "gcc" "src/layout/CMakeFiles/hotspot_layout.dir/geometry.cpp.o.d"
  "/root/repo/src/layout/raster.cpp" "src/layout/CMakeFiles/hotspot_layout.dir/raster.cpp.o" "gcc" "src/layout/CMakeFiles/hotspot_layout.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hotspot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotspot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
