file(REMOVE_RECURSE
  "libhotspot_layout.a"
)
