file(REMOVE_RECURSE
  "CMakeFiles/hotspot_layout.dir/clip.cpp.o"
  "CMakeFiles/hotspot_layout.dir/clip.cpp.o.d"
  "CMakeFiles/hotspot_layout.dir/geometry.cpp.o"
  "CMakeFiles/hotspot_layout.dir/geometry.cpp.o.d"
  "CMakeFiles/hotspot_layout.dir/raster.cpp.o"
  "CMakeFiles/hotspot_layout.dir/raster.cpp.o.d"
  "libhotspot_layout.a"
  "libhotspot_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
