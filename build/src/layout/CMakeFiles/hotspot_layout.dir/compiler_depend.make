# Empty compiler generated dependencies file for hotspot_layout.
# This may be replaced when dependencies are built.
