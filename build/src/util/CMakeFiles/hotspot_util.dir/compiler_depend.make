# Empty compiler generated dependencies file for hotspot_util.
# This may be replaced when dependencies are built.
