file(REMOVE_RECURSE
  "CMakeFiles/hotspot_util.dir/logging.cpp.o"
  "CMakeFiles/hotspot_util.dir/logging.cpp.o.d"
  "CMakeFiles/hotspot_util.dir/pgm.cpp.o"
  "CMakeFiles/hotspot_util.dir/pgm.cpp.o.d"
  "CMakeFiles/hotspot_util.dir/rng.cpp.o"
  "CMakeFiles/hotspot_util.dir/rng.cpp.o.d"
  "CMakeFiles/hotspot_util.dir/string_util.cpp.o"
  "CMakeFiles/hotspot_util.dir/string_util.cpp.o.d"
  "CMakeFiles/hotspot_util.dir/table.cpp.o"
  "CMakeFiles/hotspot_util.dir/table.cpp.o.d"
  "libhotspot_util.a"
  "libhotspot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
