file(REMOVE_RECURSE
  "libhotspot_util.a"
)
