file(REMOVE_RECURSE
  "CMakeFiles/deploy_inference.dir/deploy_inference.cpp.o"
  "CMakeFiles/deploy_inference.dir/deploy_inference.cpp.o.d"
  "deploy_inference"
  "deploy_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
