# Empty compiler generated dependencies file for deploy_inference.
# This may be replaced when dependencies are built.
