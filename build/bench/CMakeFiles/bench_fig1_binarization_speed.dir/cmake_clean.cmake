file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_binarization_speed.dir/bench_fig1_binarization_speed.cpp.o"
  "CMakeFiles/bench_fig1_binarization_speed.dir/bench_fig1_binarization_speed.cpp.o.d"
  "bench_fig1_binarization_speed"
  "bench_fig1_binarization_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_binarization_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
