# Empty dependencies file for bench_fig1_binarization_speed.
# This may be replaced when dependencies are built.
