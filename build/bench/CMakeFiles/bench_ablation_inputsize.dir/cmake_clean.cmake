file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inputsize.dir/bench_ablation_inputsize.cpp.o"
  "CMakeFiles/bench_ablation_inputsize.dir/bench_ablation_inputsize.cpp.o.d"
  "bench_ablation_inputsize"
  "bench_ablation_inputsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inputsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
