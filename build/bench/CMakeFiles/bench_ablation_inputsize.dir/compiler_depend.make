# Empty compiler generated dependencies file for bench_ablation_inputsize.
# This may be replaced when dependencies are built.
