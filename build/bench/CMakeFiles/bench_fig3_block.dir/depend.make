# Empty dependencies file for bench_fig3_block.
# This may be replaced when dependencies are built.
