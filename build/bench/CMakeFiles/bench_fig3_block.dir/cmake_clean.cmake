file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_block.dir/bench_fig3_block.cpp.o"
  "CMakeFiles/bench_fig3_block.dir/bench_fig3_block.cpp.o.d"
  "bench_fig3_block"
  "bench_fig3_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
